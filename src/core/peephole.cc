#include "src/core/peephole.h"

#include <algorithm>
#include <map>

#include "src/common/check.h"

namespace tableau {
namespace {

// True if an allocation of `task` moved to [start, end) would still lie
// within the same period window as it did at [orig_start, orig_end).
bool StaysInWindow(const PeriodicTask& task, TimeNs orig_start, TimeNs orig_end,
                   TimeNs start, TimeNs end) {
  const TimeNs window = orig_start / task.period;
  if ((orig_end - 1) / task.period != window) {
    return false;  // Boundary-spanning (merged across jobs): do not move.
  }
  return start >= window * task.period && end <= (window + 1) * task.period;
}

// Merges contiguous same-vCPU neighbours in place.
void MergeContiguous(std::vector<Allocation>& allocations) {
  std::vector<Allocation> merged;
  for (const Allocation& alloc : allocations) {
    if (!merged.empty() && merged.back().vcpu == alloc.vcpu &&
        merged.back().end == alloc.start) {
      merged.back().end = alloc.end;
    } else {
      merged.push_back(alloc);
    }
  }
  allocations = std::move(merged);
}

}  // namespace

PeepholeStats PeepholeOptimizeCore(std::vector<Allocation>& allocations,
                                   const std::vector<PeriodicTask>& tasks) {
  PeepholeStats stats;
  std::map<VcpuId, const PeriodicTask*> by_vcpu;
  for (const PeriodicTask& task : tasks) {
    // Multiple pieces of the same vCPU on one core would make the window
    // lookup ambiguous; callers exclude such cores.
    by_vcpu[task.vcpu] = &task;
  }

  std::sort(allocations.begin(), allocations.end(),
            [](const Allocation& a, const Allocation& b) { return a.start < b.start; });
  MergeContiguous(allocations);
  stats.allocations_before = static_cast<int>(allocations.size());

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i + 2 < allocations.size(); ++i) {
      Allocation& first = allocations[i];
      Allocation& middle = allocations[i + 1];
      Allocation& last = allocations[i + 2];
      if (first.vcpu != last.vcpu || first.vcpu == middle.vcpu) {
        continue;
      }
      const auto outer_it = by_vcpu.find(first.vcpu);
      const auto middle_it = by_vcpu.find(middle.vcpu);
      if (outer_it == by_vcpu.end() || middle_it == by_vcpu.end()) {
        continue;
      }
      const PeriodicTask& outer = *outer_it->second;
      const PeriodicTask& inner = *middle_it->second;

      // Attempt A-B-A -> A-A-B: `last` slides left against `first`, `middle`
      // slides right to the end. Requires first/middle/last contiguity so no
      // idle time moves.
      if (first.end == middle.start && middle.end == last.start) {
        const TimeNs a2_start = first.end;
        const TimeNs a2_end = a2_start + last.Length();
        const TimeNs b_start = a2_end;
        const TimeNs b_end = b_start + middle.Length();
        if (StaysInWindow(outer, last.start, last.end, a2_start, a2_end) &&
            StaysInWindow(inner, middle.start, middle.end, b_start, b_end)) {
          const Allocation moved_a{last.vcpu, a2_start, a2_end};
          const Allocation moved_b{middle.vcpu, b_start, b_end};
          middle = moved_a;
          last = moved_b;
          ++stats.swaps;
          changed = true;
          continue;
        }
        // Attempt A-B-A -> B-A-A: `first` slides right, `middle` to front.
        const TimeNs b2_start = first.start;
        const TimeNs b2_end = b2_start + middle.Length();
        const TimeNs a1_start = b2_end;
        const TimeNs a1_end = a1_start + first.Length();
        if (StaysInWindow(outer, first.start, first.end, a1_start, a1_end) &&
            StaysInWindow(inner, middle.start, middle.end, b2_start, b2_end)) {
          const Allocation moved_b{middle.vcpu, b2_start, b2_end};
          const Allocation moved_a{first.vcpu, a1_start, a1_end};
          first = moved_b;
          middle = moved_a;
          ++stats.swaps;
          changed = true;
          continue;
        }
      }
    }
    if (changed) {
      MergeContiguous(allocations);
    }
  }
  stats.allocations_after = static_cast<int>(allocations.size());
  return stats;
}

PeepholeStats PeepholeOptimize(std::vector<std::vector<Allocation>>& per_core,
                               const std::vector<std::vector<PeriodicTask>>& core_tasks) {
  PeepholeStats total;
  for (std::size_t c = 0; c < per_core.size(); ++c) {
    if (c >= core_tasks.size()) {
      break;
    }
    const std::vector<PeriodicTask>& tasks = core_tasks[c];
    // Skip cores hosting split pieces or duplicate-vCPU assignments.
    bool eligible = !tasks.empty();
    std::map<VcpuId, int> seen;
    for (const PeriodicTask& task : tasks) {
      if (task.offset != 0 || task.deadline != task.period || ++seen[task.vcpu] > 1) {
        eligible = false;
        break;
      }
    }
    if (!eligible) {
      continue;
    }
    const PeepholeStats stats = PeepholeOptimizeCore(per_core[c], tasks);
    total.allocations_before += stats.allocations_before;
    total.allocations_after += stats.allocations_after;
    total.swaps += stats.swaps;
  }
  return total;
}

bool ServicePerWindowPreserved(const std::vector<Allocation>& allocations,
                               const std::vector<PeriodicTask>& tasks,
                               TimeNs hyperperiod) {
  for (const PeriodicTask& task : tasks) {
    for (TimeNs window = 0; window < hyperperiod; window += task.period) {
      TimeNs served = 0;
      for (const Allocation& alloc : allocations) {
        if (alloc.vcpu != task.vcpu) {
          continue;
        }
        const TimeNs lo = std::max(alloc.start, window);
        const TimeNs hi = std::min(alloc.end, window + task.period);
        served += std::max<TimeNs>(0, hi - lo);
      }
      if (served != task.cost) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace tableau
