// Per-VM demand prediction for closed-loop reservation control: an
// LLSP-style least-squares linear fit over the most recent windowed demand
// observations (atlas-rt's execution-time predictor is the exemplar the
// ROADMAP names), extrapolated a configurable horizon of windows ahead,
// with a quantile-tracking fallback for the cold-start and degenerate
// cases where a line fit is meaningless.
//
// The predictor is deterministic and allocation-free after construction:
// observations live in a fixed ring sized by PredictorConfig::history, the
// fit is closed-form (no iteration, no epsilon-dependent convergence), and
// Snapshot()/Restore() round-trips the full state bit-identically — the
// property tests/adapt_test.cc pins so fleet runs stay fingerprint-stable
// across execution modes.
//
// Why a line fit is enough: the prediction is linear in the observations
// (weight of sample i is 1/m + (x_i - x_mean)(x_pred - x_mean)/Sxx), the
// newest sample's weight is strictly positive (monotone response to load
// steps), and the absolute weights sum to a small constant (bounded noise
// amplification) — the three properties the unit battery checks.
#ifndef SRC_ADAPT_PREDICTOR_H_
#define SRC_ADAPT_PREDICTOR_H_

#include <cstdint>
#include <vector>

namespace tableau::adapt {

struct PredictorConfig {
  // Observations retained for quantile tracking (the ring size).
  int history = 32;
  // Most recent observations entering the least-squares fit. Smaller =
  // faster tracking of trend changes; larger = smoother under noise.
  int fit_window = 12;
  // Windows ahead the fit is extrapolated (covers the actuation delay:
  // decision at this barrier, table live roughly two rounds later).
  int horizon = 2;
  // Fallback quantile used before the fit has enough samples (< 3) or when
  // the fit abscissas are degenerate.
  double quantile = 0.99;
};

class DemandPredictor {
 public:
  struct Prediction {
    double demand = 0;
    // True when the least-squares fit produced the value; false when the
    // quantile fallback did (cold start or degenerate fit).
    bool from_fit = false;
  };

  // Full predictor state, equality-comparable for the bit-identity test.
  struct State {
    std::vector<double> ring;
    int next = 0;
    int count = 0;

    bool operator==(const State&) const = default;
  };

  DemandPredictor() : DemandPredictor(PredictorConfig{}) {}
  explicit DemandPredictor(PredictorConfig config);

  const PredictorConfig& config() const { return config_; }
  int samples() const { return count_; }

  // Records one window's observed demand (a utilization fraction; any
  // non-negative unit works — the predictor is unit-agnostic).
  void Observe(double demand);

  // Demand `config.horizon` windows ahead, clamped to >= 0.
  Prediction Predict() const;

  // Empirical quantile over the retained ring (nearest-rank, q in [0, 1]).
  // 0 before the first observation.
  double Quantile(double q) const;

  State Snapshot() const;
  void Restore(const State& state);

 private:
  PredictorConfig config_;
  std::vector<double> ring_;
  int next_ = 0;   // Ring slot the next observation lands in.
  int count_ = 0;  // Observations retained, <= config_.history.
};

}  // namespace tableau::adapt

#endif  // SRC_ADAPT_PREDICTOR_H_
