#include "src/adapt/controller.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace tableau::adapt {

AdaptiveController::AdaptiveController(PolicyConfig config) : config_(config) {
  TABLEAU_CHECK(config_.headroom >= 1.0);
  TABLEAU_CHECK(config_.quantize > 0);
  TABLEAU_CHECK(config_.grow_deadband >= 0 && config_.shrink_deadband >= 0);
  TABLEAU_CHECK(config_.cooldown_windows >= 0);
  TABLEAU_CHECK(config_.saturation_growth >= 1.0);
}

AdaptiveController::VmState& AdaptiveController::StateOf(int vm) {
  TABLEAU_CHECK(vm >= 0 && static_cast<std::size_t>(vm) < vms_.size());
  return vms_[static_cast<std::size_t>(vm)];
}

const AdaptiveController::VmState& AdaptiveController::StateOf(int vm) const {
  TABLEAU_CHECK(vm >= 0 && static_cast<std::size_t>(vm) < vms_.size());
  return vms_[static_cast<std::size_t>(vm)];
}

void AdaptiveController::BindVm(int vm, double initial_utilization,
                                const VmLimits& limits) {
  TABLEAU_CHECK(vm >= 0);
  if (static_cast<std::size_t>(vm) >= vms_.size()) {
    vms_.resize(static_cast<std::size_t>(vm) + 1);
  }
  VmState& state = vms_[static_cast<std::size_t>(vm)];
  TABLEAU_CHECK_MSG(!state.bound, "vm %d already bound", vm);
  TABLEAU_CHECK(limits.min_utilization > 0 &&
                limits.min_utilization <= limits.max_utilization);
  state.bound = true;
  state.reservation = initial_utilization;
  state.limits = limits;
  state.cooldown_left = 0;
  state.predictor = DemandPredictor(config_.predictor);
}

void AdaptiveController::UnbindVm(int vm) {
  VmState& state = StateOf(vm);
  TABLEAU_CHECK(state.bound);
  state = VmState{};
}

bool AdaptiveController::bound(int vm) const {
  return vm >= 0 && static_cast<std::size_t>(vm) < vms_.size() &&
         vms_[static_cast<std::size_t>(vm)].bound;
}

double AdaptiveController::reservation(int vm) const {
  return StateOf(vm).reservation;
}

const VmLimits& AdaptiveController::limits(int vm) const {
  return StateOf(vm).limits;
}

AdaptiveController::Decision AdaptiveController::ObserveWindow(
    int vm, bool has_data, double supply_fraction, double demand_fraction) {
  VmState& state = StateOf(vm);
  TABLEAU_CHECK(state.bound);
  ++counters_.observations;

  Decision decision;
  if (!has_data) {
    // An idle window is not evidence of zero demand — the VM may simply be
    // between requests. Hold, and leave the predictor untouched so the
    // retained quantiles still describe the VM when traffic returns.
    ++counters_.no_data;
    ++counters_.holds;
    decision.no_data = true;
    return decision;
  }

  state.predictor.Observe(std::max(supply_fraction, 0.0));
  decision.saturated = demand_fraction >= config_.saturation_threshold;
  if (decision.saturated) {
    ++counters_.saturated;
  }
  if (state.cooldown_left > 0) {
    --state.cooldown_left;
    ++counters_.cooldown_holds;
    ++counters_.holds;
    return decision;
  }

  double target = state.predictor.Predict().demand * config_.headroom;
  if (decision.saturated) {
    // Supply saturated the window, so the fit only sees the ceiling; probe
    // upward multiplicatively until the backlog drains.
    target = std::max(target, state.reservation * config_.saturation_growth);
  }
  // Shrink floor: never below the demand the VM has recently demonstrated.
  target = std::max(target, state.predictor.Quantile(config_.floor_quantile));
  target = std::clamp(target, state.limits.min_utilization,
                      state.limits.max_utilization);
  // Quantize up to the grid, then re-clamp (the ceil can overshoot max).
  target = std::ceil(target / config_.quantize - 1e-9) * config_.quantize;
  target = std::clamp(target, state.limits.min_utilization,
                      state.limits.max_utilization);

  if (target > state.reservation + config_.grow_deadband) {
    ++counters_.grows;
    decision.action = Action::kGrow;
    decision.target = target;
  } else if (target < state.reservation - config_.shrink_deadband) {
    ++counters_.shrinks;
    decision.action = Action::kShrink;
    decision.target = target;
  } else {
    ++counters_.holds;
  }
  return decision;
}

void AdaptiveController::CommitResize(int vm, double utilization) {
  VmState& state = StateOf(vm);
  TABLEAU_CHECK(state.bound);
  state.reservation = utilization;
  state.cooldown_left = config_.cooldown_windows;
  ++counters_.commits;
}

void AdaptiveController::RejectResize(int vm) {
  VmState& state = StateOf(vm);
  TABLEAU_CHECK(state.bound);
  // A failed install also cools down: the planner said no, and hammering it
  // every window would fight the ReplanController's backoff.
  state.cooldown_left = config_.cooldown_windows;
  ++counters_.rejects;
}

void AdaptiveController::PublishMetrics(obs::MetricsRegistry* registry) const {
  const auto set = [registry](const char* name, std::uint64_t value) {
    registry->GetGauge(name)->Set(static_cast<double>(value));
  };
  set("adapt.observations", counters_.observations);
  set("adapt.no_data", counters_.no_data);
  set("adapt.saturated", counters_.saturated);
  set("adapt.holds", counters_.holds);
  set("adapt.cooldown_holds", counters_.cooldown_holds);
  set("adapt.grows", counters_.grows);
  set("adapt.shrinks", counters_.shrinks);
  set("adapt.resizes_installed", counters_.commits);
  set("adapt.resizes_rejected", counters_.rejects);
}

}  // namespace tableau::adapt
