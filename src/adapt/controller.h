// Closed-loop reservation controller: converts per-VM windowed demand
// observations into (U, L) resize decisions through a DemandPredictor and a
// hysteresis policy, entirely as pure arithmetic — the controller never
// touches the planner or the simulation engine. The owner (fleet::Host)
// feeds one ObserveWindow per VM per telemetry window at a deterministic
// barrier, applies the non-hold decisions through Planner::Solve's delta
// path, and reports back with CommitResize/RejectResize so the controller's
// view of the live reservation tracks what was actually installed.
//
// Policy invariants (fuzz-checked by tests/check_adapt_test.cc):
//  - A window with no data holds: a briefly-idle VM must not be resized to
//    its floor on the strength of silence (the TimeSeriesRecorder::DataAt /
//    Telemetry window-view "no data" signal, not 0.0 demand).
//  - Hysteresis: grow only when the target exceeds the live reservation by
//    grow_deadband, shrink only below it by shrink_deadband, and at most
//    one committed resize per cooldown_windows observed windows per VM.
//  - The target never shrinks below the VM's observed demand quantile
//    (floor_quantile over the predictor's retained ring) and is always
//    clamped to the VM's [min, max] and quantized up to the grid.
//  - Saturation (observed demand fraction at the window ceiling — the VM is
//    backlogged, so supply understates true demand) switches to
//    multiplicative growth probing, congestion-control style.
#ifndef SRC_ADAPT_CONTROLLER_H_
#define SRC_ADAPT_CONTROLLER_H_

#include <cstdint>
#include <vector>

#include "src/adapt/predictor.h"
#include "src/common/time.h"
#include "src/obs/metrics.h"

namespace tableau::adapt {

// Per-VM resize clamps, fixed at bind time (the tenant's contract).
struct VmLimits {
  double min_utilization = 1.0 / 64;
  double max_utilization = 1.0;
  TimeNs latency_goal = 20 * kMillisecond;
};

struct PolicyConfig {
  PredictorConfig predictor;
  // Multiplicative safety margin over predicted demand.
  double headroom = 1.3;
  // Reservations are quantized up to multiples of this grid.
  double quantize = 1.0 / 32;
  // Hysteresis deadbands around the live reservation.
  double grow_deadband = 1.0 / 64;
  double shrink_deadband = 1.0 / 16;
  // Minimum observed windows between committed resizes of one VM.
  int cooldown_windows = 4;
  // Observed demand fraction at or above this marks the window saturated.
  double saturation_threshold = 0.95;
  // Multiplicative growth probe applied to the live reservation while
  // saturated (supply-based prediction understates backlogged demand).
  double saturation_growth = 1.5;
  // Never shrink below this quantile of the retained demand observations.
  double floor_quantile = 0.99;
};

class AdaptiveController {
 public:
  enum class Action { kHold, kGrow, kShrink };

  struct Decision {
    Action action = Action::kHold;
    // Proposed new utilization; meaningful when action != kHold.
    double target = 0;
    bool no_data = false;
    bool saturated = false;
  };

  struct Counters {
    std::uint64_t observations = 0;
    std::uint64_t no_data = 0;
    std::uint64_t saturated = 0;
    std::uint64_t holds = 0;
    std::uint64_t cooldown_holds = 0;
    std::uint64_t grows = 0;
    std::uint64_t shrinks = 0;
    std::uint64_t commits = 0;
    std::uint64_t rejects = 0;
  };

  AdaptiveController() : AdaptiveController(PolicyConfig{}) {}
  explicit AdaptiveController(PolicyConfig config);

  const PolicyConfig& config() const { return config_; }

  // Registers `vm` with its initially admitted reservation. Ids are dense
  // small integers (the host's slot indices).
  void BindVm(int vm, double initial_utilization, const VmLimits& limits);
  void UnbindVm(int vm);
  bool bound(int vm) const;
  // The controller's view of the live reservation (last committed value).
  double reservation(int vm) const;
  const VmLimits& limits(int vm) const;

  // One closed telemetry window for `vm`. supply_fraction is the demand the
  // VM actually consumed (service / window); demand_fraction additionally
  // counts time spent runnable-waiting and is used only for saturation
  // detection. has_data == false means the window recorded no activity.
  Decision ObserveWindow(int vm, bool has_data, double supply_fraction,
                         double demand_fraction);

  // Actuation feedback: the owner installed (or failed to install) the
  // decided resize. Both start the VM's cooldown.
  void CommitResize(int vm, double utilization);
  void RejectResize(int vm);

  const Counters& counters() const { return counters_; }
  // Surfaces the counters as adapt.* gauges (snapshot-time; deterministic).
  void PublishMetrics(obs::MetricsRegistry* registry) const;

 private:
  struct VmState {
    bool bound = false;
    double reservation = 0;
    VmLimits limits;
    int cooldown_left = 0;
    DemandPredictor predictor;
  };

  VmState& StateOf(int vm);
  const VmState& StateOf(int vm) const;

  PolicyConfig config_;
  std::vector<VmState> vms_;
  Counters counters_;
};

}  // namespace tableau::adapt

#endif  // SRC_ADAPT_CONTROLLER_H_
