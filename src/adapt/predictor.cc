#include "src/adapt/predictor.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace tableau::adapt {

DemandPredictor::DemandPredictor(PredictorConfig config) : config_(config) {
  TABLEAU_CHECK(config_.history >= 1);
  TABLEAU_CHECK(config_.fit_window >= 2);
  TABLEAU_CHECK(config_.horizon >= 0);
  TABLEAU_CHECK(config_.quantile >= 0 && config_.quantile <= 1);
  ring_.resize(static_cast<std::size_t>(config_.history), 0.0);
}

void DemandPredictor::Observe(double demand) {
  ring_[static_cast<std::size_t>(next_)] = demand < 0 ? 0.0 : demand;
  next_ = (next_ + 1) % config_.history;
  count_ = std::min(count_ + 1, config_.history);
}

DemandPredictor::Prediction DemandPredictor::Predict() const {
  Prediction prediction;
  const int m = std::min({count_, config_.fit_window, config_.history});
  if (m < 3) {
    // Too little evidence for a trend; track the high quantile instead so
    // cold-start predictions err toward the demand already seen.
    prediction.demand = Quantile(config_.quantile);
    return prediction;
  }
  // Least squares over the last m samples at abscissas 0..m-1 (newest at
  // m-1), extrapolated to x = m - 1 + horizon. Closed form:
  //   slope = Sxy / Sxx, intercept = y_mean - slope * x_mean.
  // Sxx depends only on m, so it is exact and never zero for m >= 2.
  const double x_mean = static_cast<double>(m - 1) / 2.0;
  double y_mean = 0;
  for (int i = 0; i < m; ++i) {
    // Sample i (0 = oldest of the fit window) lives m - i steps behind next_.
    const int slot = (next_ - m + i + 2 * config_.history) % config_.history;
    y_mean += ring_[static_cast<std::size_t>(slot)];
  }
  y_mean /= static_cast<double>(m);
  double sxx = 0;
  double sxy = 0;
  for (int i = 0; i < m; ++i) {
    const int slot = (next_ - m + i + 2 * config_.history) % config_.history;
    const double dx = static_cast<double>(i) - x_mean;
    sxx += dx * dx;
    sxy += dx * (ring_[static_cast<std::size_t>(slot)] - y_mean);
  }
  const double slope = sxy / sxx;
  const double x_pred = static_cast<double>(m - 1 + config_.horizon);
  prediction.demand = y_mean + slope * (x_pred - x_mean);
  prediction.from_fit = true;
  if (prediction.demand < 0) {
    prediction.demand = 0;
  }
  return prediction;
}

double DemandPredictor::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  std::vector<double> sorted;
  sorted.reserve(static_cast<std::size_t>(count_));
  for (int i = 0; i < count_; ++i) {
    const int slot = (next_ - count_ + i + 2 * config_.history) % config_.history;
    sorted.push_back(ring_[static_cast<std::size_t>(slot)]);
  }
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: the smallest value with at least q * count samples at or
  // below it.
  int rank = static_cast<int>(std::ceil(q * static_cast<double>(count_)));
  rank = std::clamp(rank, 1, count_);
  return sorted[static_cast<std::size_t>(rank - 1)];
}

DemandPredictor::State DemandPredictor::Snapshot() const {
  State state;
  state.ring = ring_;
  state.next = next_;
  state.count = count_;
  return state;
}

void DemandPredictor::Restore(const State& state) {
  TABLEAU_CHECK(static_cast<int>(state.ring.size()) == config_.history);
  ring_ = state.ring;
  next_ = state.next;
  count_ = state.count;
}

}  // namespace tableau::adapt
