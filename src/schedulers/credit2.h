// Model of Xen's Credit2 scheduler (Sec. 7.2 "Schedulers").
//
// Credit2 extends Credit "with the goal of improving responsiveness, and
// does this primarily by eliminating Credit's priority boosting". Modelled
// behaviours:
//  - per-socket shared runqueues protected by a per-socket lock (whose
//    contention is modelled exactly — Credit2's ops are pricier than
//    Credit's per-CPU ones, Table 1);
//  - credits burned while running, highest-credit-first selection, and a
//    global credit reset when the next vCPU to run is out of credit;
//  - a scheduling rate limit (1 ms) and a maximum timeslice (10 ms);
//  - no boosting and no caps (the paper evaluates Credit2 only in the
//    uncapped scenario, matching Xen 4.9 capabilities).
#ifndef SRC_SCHEDULERS_CREDIT2_H_
#define SRC_SCHEDULERS_CREDIT2_H_

#include <vector>

#include "src/hypervisor/machine.h"
#include "src/hypervisor/scheduler.h"

namespace tableau {

class Credit2Scheduler : public VcpuScheduler {
 public:
  struct Options {
    TimeNs ratelimit = 1 * kMillisecond;
    TimeNs max_timeslice = 10 * kMillisecond;
    TimeNs credit_init = 10 * kMillisecond;  // Credit added on reset.
  };

  explicit Credit2Scheduler(Options options) : options_(options) {}

  std::string Name() const override { return "Credit2"; }
  void Attach(Machine* machine) override;
  void AddVcpu(Vcpu* vcpu) override;
  Decision PickNext(CpuId cpu) override;
  void OnWakeup(Vcpu* vcpu) override;
  void OnBlock(Vcpu* vcpu, CpuId cpu) override;
  void OnDeschedule(Vcpu* vcpu, CpuId cpu, DeschedReason reason) override;
  void OnServiceAccrued(Vcpu* vcpu, CpuId cpu, TimeNs amount) override;

 private:
  struct VcpuInfo {
    Vcpu* vcpu = nullptr;
    TimeNs credit = 0;
    int socket = 0;
    bool queued = false;
  };

  int NumSockets() const;
  void Enqueue(VcpuId id, int socket);
  void DequeueIfQueued(VcpuId id);
  // Best queued candidate on `socket` (highest credit), or -1.
  int BestInQueue(int socket) const;
  TimeNs ChargeLock(int socket, TimeNs hold);

  Options options_;
  std::vector<VcpuInfo> info_;
  std::vector<std::vector<VcpuId>> runq_;  // Per-socket.
  std::vector<LockModel> locks_;           // Per-socket runqueue lock.

  obs::LatencyHistogram* m_lock_acquire_ns_ = nullptr;
};

}  // namespace tableau

#endif  // SRC_SCHEDULERS_CREDIT2_H_
