// Model of Xen's Credit scheduler (the default scheduler in Xen 4.9;
// Sec. 7.2 "Schedulers").
//
// Faithfully reproduced behaviours:
//  - weighted proportional-share credits, replenished by a global accounting
//    pass every 30 ms, with UNDER (credit left) / OVER (credit exhausted)
//    priorities;
//  - the I/O "boost" heuristic: an UNDER vCPU waking from a blocking
//    operation is temporarily raised to BOOST priority and preempts
//    non-boosted vCPUs — which stops helping when every vCPU is boosted
//    (Sec. 2.1);
//  - caps: a capped vCPU that exhausts its credit is parked until the next
//    accounting pass (the source of Credit's ~tens-of-ms capped-scenario
//    delays in Figs. 5a/6d);
//  - per-CPU runqueues with work stealing: when the local queue holds no
//    BOOST/UNDER work, the scheduler scans remote CPUs, which makes its
//    schedule operation the most expensive of the four (Table 1);
//  - the 5 ms timeslice used in the paper's configuration.
#ifndef SRC_SCHEDULERS_CREDIT_H_
#define SRC_SCHEDULERS_CREDIT_H_

#include <vector>

#include "src/hypervisor/machine.h"
#include "src/hypervisor/scheduler.h"

namespace tableau {

class CreditScheduler : public VcpuScheduler {
 public:
  struct Options {
    TimeNs timeslice = 5 * kMillisecond;          // Paper setup (default 30 ms).
    TimeNs accounting_period = 30 * kMillisecond;  // csched_acct cadence.
    bool boost_enabled = true;
  };

  explicit CreditScheduler(Options options) : options_(options) {}

  std::string Name() const override { return "Credit"; }
  void Attach(Machine* machine) override;
  void AddVcpu(Vcpu* vcpu) override;
  void Start() override;
  Decision PickNext(CpuId cpu) override;
  void OnWakeup(Vcpu* vcpu) override;
  void OnBlock(Vcpu* vcpu, CpuId cpu) override;
  void OnDeschedule(Vcpu* vcpu, CpuId cpu, DeschedReason reason) override;
  void OnServiceAccrued(Vcpu* vcpu, CpuId cpu, TimeNs amount) override;

 private:
  enum class Prio { kBoost = 0, kUnder = 1, kOver = 2 };

  struct VcpuInfo {
    Vcpu* vcpu = nullptr;
    double credit = 0;  // Nanoseconds of entitlement.
    Prio prio = Prio::kUnder;
    CpuId cpu = 0;       // Runqueue the vCPU belongs to.
    bool parked = false;  // Capped and out of credit until next accounting.
    bool queued = false;
  };

  void Accounting();
  void Enqueue(VcpuId id, CpuId cpu);
  void DequeueIfQueued(VcpuId id);
  // Index of the best (highest-priority, FIFO within class) queued vCPU on
  // `cpu`, or -1.
  int BestInQueue(CpuId cpu, bool under_or_better_only) const;
  Prio BasePrio(const VcpuInfo& info) const {
    return info.credit > 0 ? Prio::kUnder : Prio::kOver;
  }

  Options options_;
  std::vector<VcpuInfo> info_;
  std::vector<std::vector<VcpuId>> runq_;  // Per-CPU, FIFO order.
  double total_weight_ = 0;

  obs::Counter* m_boost_promotions_ = nullptr;
  obs::Counter* m_steals_ = nullptr;
  obs::LatencyHistogram* m_runq_lock_ns_ = nullptr;
};

}  // namespace tableau

#endif  // SRC_SCHEDULERS_CREDIT_H_
