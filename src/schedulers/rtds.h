// Model of Xen's RTDS scheduler (from the RT-Xen project; Sec. 7.2).
//
// RTDS is a *dynamic* global-EDF scheduler over per-vCPU (budget, period)
// deferrable-server reservations: budgets replenish at period boundaries,
// the earliest current deadline runs, and a depleted vCPU waits for its next
// replenishment (so RTDS is inherently capped — the paper evaluates it only
// in the capped scenario).
//
// Crucially, all queues are global and protected by a single global lock.
// The lock is modelled exactly (a serialization point shared by all CPUs),
// which reproduces RTDS's scalability collapse: its post-schedule "Migrate"
// op costs ~9 us on 16 cores and >168 us on 48 cores in the paper
// (Tables 1-2).
//
// For a direct comparison, vCPU (budget, period) pairs are derived from the
// (utilization, latency) reservation with the same mapping Tableau's planner
// uses, exactly as the paper configures RTDS "to match the parameters of
// Tableau".
#ifndef SRC_SCHEDULERS_RTDS_H_
#define SRC_SCHEDULERS_RTDS_H_

#include <vector>

#include "src/hypervisor/machine.h"
#include "src/hypervisor/scheduler.h"

namespace tableau {

class RtdsScheduler : public VcpuScheduler {
 public:
  RtdsScheduler() = default;

  std::string Name() const override { return "RTDS"; }
  void Attach(Machine* machine) override;
  void AddVcpu(Vcpu* vcpu) override;
  void Start() override;
  Decision PickNext(CpuId cpu) override;
  void OnWakeup(Vcpu* vcpu) override;
  void OnBlock(Vcpu* vcpu, CpuId cpu) override;
  void OnDeschedule(Vcpu* vcpu, CpuId cpu, DeschedReason reason) override;
  void OnServiceAccrued(Vcpu* vcpu, CpuId cpu, TimeNs amount) override;

 private:
  struct VcpuInfo {
    Vcpu* vcpu = nullptr;
    TimeNs budget_max = 0;
    TimeNs period = 0;
    TimeNs budget = 0;
    TimeNs deadline = 0;  // Absolute deadline of the current period.
    EventId timer = kInvalidEvent;  // Persistent replenishment timer.
  };

  void Replenish(VcpuId id);
  // Preempt the idle CPU or the running vCPU with the latest deadline if
  // `info` beats it ("tickling"; scans all CPUs under the global lock).
  void Tickle(const VcpuInfo& info);
  void ChargeGlobalLock(TimeNs hold);
  // Bounded-patience variant: spin at most `patience`, then give up (Xen's
  // trylock pattern on contended paths).
  void ChargeGlobalLockBounded(TimeNs hold, TimeNs patience);

  std::vector<VcpuInfo> info_;
  LockModel global_lock_;

  // Global-lock acquisition cost (queueing delay + hold) and the number of
  // bounded acquisitions that gave up within their patience window.
  obs::LatencyHistogram* m_lock_acquire_ns_ = nullptr;
  obs::Counter* m_lock_timeouts_ = nullptr;
};

}  // namespace tableau

#endif  // SRC_SCHEDULERS_RTDS_H_
