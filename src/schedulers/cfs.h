// Model of Linux's Completely Fair Scheduler as used under KVM (paper
// Sec. 2.1): included as a fifth scheduler because the paper's motivation
// discusses CFS's heuristics — "gentle fair sleepers" crediting woken tasks
// half a latency period of virtual runtime, and per-CPU runqueues with
// periodic load balancing whose "complex and erratic" behaviour can
// under-utilize cores [Lozi et al., EuroSys'16].
//
// Modelled behaviours:
//  - per-vCPU virtual runtime (vruntime), weighted by the nice-equivalent
//    weight; the runnable vCPU with the smallest vruntime runs;
//  - sched_latency / min_granularity slicing: the target latency is divided
//    among runnable vCPUs, floored at the minimum granularity;
//  - sleeper fairness: a waking vCPU's vruntime is set back to at most
//    max(own, cfs_min - sched_latency/2), bounding how much it can starve
//    the current runner (the "gentle" variant);
//  - per-CPU runqueues with idle balancing (pull from the busiest CPU) and
//    periodic active balancing;
//  - optional bandwidth cap (CFS bandwidth control: quota/period), used for
//    the capped scenario.
#ifndef SRC_SCHEDULERS_CFS_H_
#define SRC_SCHEDULERS_CFS_H_

#include <vector>

#include "src/hypervisor/machine.h"
#include "src/hypervisor/scheduler.h"

namespace tableau {

class CfsScheduler : public VcpuScheduler {
 public:
  struct Options {
    TimeNs sched_latency = 12 * kMillisecond;   // sched_latency_ns analog.
    TimeNs min_granularity = 1500 * kMicrosecond;
    TimeNs balance_interval = 4 * kMillisecond;  // Periodic load balancing.
    TimeNs bandwidth_period = 100 * kMillisecond;  // CFS bandwidth control.
    bool gentle_fair_sleepers = true;
  };

  explicit CfsScheduler(Options options) : options_(options) {}

  std::string Name() const override { return "CFS"; }
  void Attach(Machine* machine) override;
  void AddVcpu(Vcpu* vcpu) override;
  void Start() override;
  Decision PickNext(CpuId cpu) override;
  void OnWakeup(Vcpu* vcpu) override;
  void OnBlock(Vcpu* vcpu, CpuId cpu) override;
  void OnDeschedule(Vcpu* vcpu, CpuId cpu, DeschedReason reason) override;
  void OnServiceAccrued(Vcpu* vcpu, CpuId cpu, TimeNs amount) override;

 private:
  struct VcpuInfo {
    Vcpu* vcpu = nullptr;
    double vruntime = 0;  // Weighted virtual runtime, ns.
    CpuId cpu = 0;        // Runqueue membership.
    bool queued = false;
    // Bandwidth control (cap > 0): runtime consumed in the current period.
    TimeNs consumed_in_period = 0;
    bool throttled = false;
  };

  void PeriodicBalance();
  void BandwidthRefresh();
  // The queued vCPU with the smallest vruntime on `cpu`, or -1.
  int MinVruntimeInQueue(CpuId cpu) const;
  // Smallest vruntime among queued/running vCPUs of `cpu` (cfs_rq->min_vruntime).
  double MinVruntime(CpuId cpu) const;
  void Enqueue(VcpuId id, CpuId cpu);
  void DequeueIfQueued(VcpuId id);

  Options options_;
  std::vector<VcpuInfo> info_;
  std::vector<std::vector<VcpuId>> runq_;  // Per-CPU.

  obs::Counter* m_steals_ = nullptr;
};

}  // namespace tableau

#endif  // SRC_SCHEDULERS_CFS_H_
