#include "src/schedulers/credit.h"

#include <algorithm>

#include "src/common/check.h"

namespace tableau {

void CreditScheduler::Attach(Machine* machine) {
  VcpuScheduler::Attach(machine);
  obs::MetricsRegistry& metrics = machine->metrics();
  m_boost_promotions_ = metrics.GetCounter("credit.boost_promotions");
  m_steals_ = metrics.GetCounter("credit.steals");
  m_runq_lock_ns_ = metrics.GetHistogram("credit.runq_lock_hold_ns");
}

void CreditScheduler::AddVcpu(Vcpu* vcpu) {
  const auto id = static_cast<std::size_t>(vcpu->id());
  if (info_.size() <= id) {
    info_.resize(id + 1);
  }
  VcpuInfo& info = info_[id];
  info.vcpu = vcpu;
  info.cpu = static_cast<CpuId>(id) % machine_->num_cpus();
  info.credit = 0;
  total_weight_ += vcpu->params().weight;
}

void CreditScheduler::Start() {
  runq_.assign(static_cast<std::size_t>(machine_->num_cpus()), {});
  Accounting();  // Prime credits.
  machine_->sim().SchedulePeriodic(machine_->Now() + options_.accounting_period,
                                   options_.accounting_period, [this] { Accounting(); });
}

void CreditScheduler::Accounting() {
  const TimeNs period = options_.accounting_period;
  // Bill running vCPUs' consumption against their pre-refill credit.
  for (CpuId cpu = 0; cpu < machine_->num_cpus(); ++cpu) {
    if (machine_->RunningOn(cpu) != nullptr) {
      machine_->SettleAccounting(cpu);
    }
  }
  // One accounting period's worth of machine capacity, distributed by
  // weight; capped vCPUs receive at most cap * period.
  const double capacity =
      static_cast<double>(period) * static_cast<double>(machine_->num_cpus());
  for (VcpuInfo& info : info_) {
    if (info.vcpu == nullptr) {
      continue;
    }
    double share = capacity * info.vcpu->params().weight / total_weight_;
    const double cap = info.vcpu->params().cap;
    if (cap > 0) {
      share = std::min(share, cap * static_cast<double>(period));
    }
    // Xen clamps credit to one period's entitlement in both directions
    // (hoarding and debt are bounded).
    info.credit = std::clamp(info.credit + share, -share, share);
    info.prio = BasePrio(info);  // Also clears any lingering BOOST.
    if (info.parked && info.credit > 0) {
      info.parked = false;
      if (info.vcpu->runnable() && info.vcpu->running_on() == kNoCpu) {
        Enqueue(info.vcpu->id(), info.cpu);
        machine_->KickCpu(info.cpu, /*remote=*/true);
      }
    }
  }
  // Accounting runs on CPU 0 under the global accounting lock.
  const OverheadCosts& costs = machine_->config().costs;
  machine_->ChargeBackground(
      0, costs.lock_base + static_cast<TimeNs>(info_.size()) * costs.cache_local);
  // The periodic tick set up in Start() re-arms this automatically.
}

void CreditScheduler::Enqueue(VcpuId id, CpuId cpu) {
  VcpuInfo& info = info_[static_cast<std::size_t>(id)];
  if (info.queued) {
    return;
  }
  info.cpu = cpu;
  info.queued = true;
  runq_[static_cast<std::size_t>(cpu)].push_back(id);
}

void CreditScheduler::DequeueIfQueued(VcpuId id) {
  VcpuInfo& info = info_[static_cast<std::size_t>(id)];
  if (!info.queued) {
    return;
  }
  auto& queue = runq_[static_cast<std::size_t>(info.cpu)];
  queue.erase(std::remove(queue.begin(), queue.end(), id), queue.end());
  info.queued = false;
}

int CreditScheduler::BestInQueue(CpuId cpu, bool under_or_better_only) const {
  const auto& queue = runq_[static_cast<std::size_t>(cpu)];
  int best = -1;
  Prio best_prio = Prio::kOver;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const VcpuInfo& info = info_[static_cast<std::size_t>(queue[i])];
    if (info.parked || !info.vcpu->runnable() || info.vcpu->running_on() != kNoCpu) {
      continue;
    }
    if (best == -1 || info.prio < best_prio) {
      best = static_cast<int>(i);
      best_prio = info.prio;
    }
  }
  if (best != -1 && under_or_better_only && best_prio == Prio::kOver) {
    return -1;
  }
  return best;
}

Decision CreditScheduler::PickNext(CpuId cpu) {
  const OverheadCosts& costs = machine_->config().costs;
  auto& queue = runq_[static_cast<std::size_t>(cpu)];
  // Per-CPU runqueue lock, credit burn accounting, runqueue sort, and
  // priority bookkeeping.
  const TimeNs lock_hold =
      costs.lock_base + 2 * static_cast<TimeNs>(queue.size()) * costs.runq_entry;
  m_runq_lock_ns_->Record(lock_hold);
  machine_->AddOpCost(lock_hold + 10 * costs.cache_local);

  int best = BestInQueue(cpu, /*under_or_better_only=*/false);
  const bool local_is_good =
      best != -1 &&
      info_[static_cast<std::size_t>(queue[static_cast<std::size_t>(best)])].prio !=
          Prio::kOver;

  if (!local_is_good) {
    // Work stealing: scan remote CPUs for BOOST/UNDER work. Same-socket
    // CPUs first, then the remote socket — each peek costs a lock and a
    // remote cache line.
    const int num_cpus = machine_->num_cpus();
    const int my_socket = machine_->SocketOf(cpu);
    std::vector<CpuId> order;
    for (int pass = 0; pass < 2; ++pass) {
      for (CpuId other = 0; other < num_cpus; ++other) {
        if (other == cpu) {
          continue;
        }
        const bool same = machine_->SocketOf(other) == my_socket;
        if ((pass == 0) == same) {
          order.push_back(other);
        }
      }
    }
    for (const CpuId other : order) {
      // Peeking a remote runqueue takes its schedule lock (a contended
      // cache line under load) and walks its entries.
      const TimeNs line = machine_->SocketOf(other) == my_socket
                              ? costs.cache_same_socket
                              : costs.cache_remote_socket;
      machine_->AddOpCost(costs.lock_base + 4 * line +
                          static_cast<TimeNs>(
                              runq_[static_cast<std::size_t>(other)].size()) *
                              costs.runq_entry);
      const int steal = BestInQueue(other, /*under_or_better_only=*/true);
      if (steal != -1) {
        auto& remote_queue = runq_[static_cast<std::size_t>(other)];
        const VcpuId stolen = remote_queue[static_cast<std::size_t>(steal)];
        DequeueIfQueued(stolen);
        Enqueue(stolen, cpu);
        m_steals_->Increment();
        best = BestInQueue(cpu, /*under_or_better_only=*/false);
        break;
      }
    }
  }

  Decision decision;
  if (best == -1) {
    decision.vcpu = kIdleVcpu;
    decision.until = kTimeNever;  // Wakeups and accounting kick idle CPUs.
    return decision;
  }
  const VcpuId picked = queue[static_cast<std::size_t>(best)];
  DequeueIfQueued(picked);
  decision.vcpu = picked;
  decision.until = machine_->Now() + options_.timeslice;
  return decision;
}

void CreditScheduler::OnWakeup(Vcpu* vcpu) {
  const OverheadCosts& costs = machine_->config().costs;
  VcpuInfo& info = info_[static_cast<std::size_t>(vcpu->id())];
  // Runqueue lock, credit/priority bookkeeping, queue insertion, and the
  // tickle peek at the target CPU's current vCPU.
  machine_->AddOpCost(costs.lock_base + 10 * costs.cache_local +
                      2 * costs.cache_same_socket + costs.cache_remote_socket +
                      costs.runq_entry);
  if (info.parked) {
    return;  // Stays parked until the next accounting pass.
  }
  // The boost heuristic: an UNDER vCPU waking from I/O is prioritized.
  if (options_.boost_enabled && info.prio == Prio::kUnder) {
    info.prio = Prio::kBoost;
    m_boost_promotions_->Increment();
  }
  const CpuId target = vcpu->last_cpu() == kNoCpu ? info.cpu : vcpu->last_cpu();
  Enqueue(vcpu->id(), target);
  // Tickle: preempt if we beat the running vCPU's priority, or the CPU idles.
  const Vcpu* running = machine_->RunningOn(target);
  if (running == nullptr) {
    machine_->KickCpu(target, /*remote=*/true);
  } else {
    const VcpuInfo& running_info = info_[static_cast<std::size_t>(running->id())];
    if (info.prio < running_info.prio) {
      machine_->KickCpu(target, /*remote=*/true);
    }
  }
}

void CreditScheduler::OnBlock(Vcpu* vcpu, CpuId cpu) {
  (void)cpu;
  machine_->AddOpCost(machine_->config().costs.cache_local);
  DequeueIfQueued(vcpu->id());
}

void CreditScheduler::OnDeschedule(Vcpu* vcpu, CpuId cpu, DeschedReason reason) {
  (void)reason;
  const OverheadCosts& costs = machine_->config().costs;
  VcpuInfo& info = info_[static_cast<std::size_t>(vcpu->id())];
  // Post-schedule work under Credit is cheap: priority reset + re-enqueue.
  machine_->AddOpCost(4 * costs.cache_local + 2 * costs.runq_entry);
  info.prio = BasePrio(info);  // BOOST is spent after one dispatch.
  if (!info.parked) {
    Enqueue(vcpu->id(), cpu);
  }
}

void CreditScheduler::OnServiceAccrued(Vcpu* vcpu, CpuId cpu, TimeNs amount) {
  VcpuInfo& info = info_[static_cast<std::size_t>(vcpu->id())];
  info.credit -= static_cast<double>(amount);
  const double cap = vcpu->params().cap;
  if (cap > 0 && info.credit <= 0 && !info.parked) {
    // Capped and out of credit: parked until the next accounting pass.
    info.parked = true;
    DequeueIfQueued(vcpu->id());
    if (vcpu->running_on() != kNoCpu) {
      machine_->KickCpu(cpu, /*remote=*/false);
    }
  }
}

}  // namespace tableau
