#include "src/schedulers/factory.h"

#include <array>
#include <cctype>

#include "src/common/check.h"
#include "src/schedulers/cfs.h"
#include "src/schedulers/credit.h"
#include "src/schedulers/credit2.h"
#include "src/schedulers/rtds.h"

namespace tableau {
namespace {

constexpr std::size_t kNumSchedKinds = std::size(kAllSchedKinds);

MadeScheduler BuildCredit(const SchedulerSpec& spec) {
  CreditScheduler::Options options;
  options.timeslice = spec.credit_timeslice;
  return MadeScheduler{std::make_unique<CreditScheduler>(options), nullptr};
}

MadeScheduler BuildCredit2(const SchedulerSpec& spec) {
  TABLEAU_CHECK_MSG(!spec.capped, "Credit2 does not support caps (Sec. 7.2)");
  return MadeScheduler{std::make_unique<Credit2Scheduler>(Credit2Scheduler::Options{}),
                       nullptr};
}

MadeScheduler BuildRtds(const SchedulerSpec& spec) {
  TABLEAU_CHECK_MSG(spec.capped, "RTDS reservations are inherently capped");
  return MadeScheduler{std::make_unique<RtdsScheduler>(), nullptr};
}

MadeScheduler BuildTableau(const SchedulerSpec& spec) {
  TableauDispatcher::Config dispatcher;
  dispatcher.work_conserving = !spec.capped;
  dispatcher.second_level_epoch = spec.second_level_epoch;
  dispatcher.switch_slip_tolerance = spec.switch_slip_tolerance;
  auto owned = std::make_unique<TableauScheduler>(dispatcher);
  TableauScheduler* view = owned.get();
  return MadeScheduler{std::move(owned), view};
}

MadeScheduler BuildCfs(const SchedulerSpec& /*spec*/) {
  return MadeScheduler{std::make_unique<CfsScheduler>(CfsScheduler::Options{}), nullptr};
}

SchedulerBuilder DefaultBuilder(SchedKind kind) {
  switch (kind) {
    case SchedKind::kCredit:
      return BuildCredit;
    case SchedKind::kCredit2:
      return BuildCredit2;
    case SchedKind::kRtds:
      return BuildRtds;
    case SchedKind::kTableau:
      return BuildTableau;
    case SchedKind::kCfs:
      return BuildCfs;
  }
  return nullptr;
}

std::array<SchedulerBuilder, kNumSchedKinds>& Registry() {
  static std::array<SchedulerBuilder, kNumSchedKinds> registry = [] {
    std::array<SchedulerBuilder, kNumSchedKinds> builders;
    for (const SchedKind kind : kAllSchedKinds) {
      builders[static_cast<std::size_t>(kind)] = DefaultBuilder(kind);
    }
    return builders;
  }();
  return registry;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

const char* SchedKindName(SchedKind kind) {
  switch (kind) {
    case SchedKind::kCredit:
      return "Credit";
    case SchedKind::kCredit2:
      return "Credit2";
    case SchedKind::kRtds:
      return "RTDS";
    case SchedKind::kTableau:
      return "Tableau";
    case SchedKind::kCfs:
      return "CFS";
  }
  return "?";
}

std::optional<SchedKind> SchedKindFromName(std::string_view name) {
  for (const SchedKind kind : kAllSchedKinds) {
    if (EqualsIgnoreCase(name, SchedKindName(kind))) {
      return kind;
    }
  }
  return std::nullopt;
}

MadeScheduler MakeScheduler(const SchedulerSpec& spec) {
  const auto index = static_cast<std::size_t>(spec.kind);
  TABLEAU_CHECK_MSG(index < kNumSchedKinds, "unknown SchedKind %d",
                    static_cast<int>(spec.kind));
  const SchedulerBuilder& builder = Registry()[index];
  TABLEAU_CHECK_MSG(static_cast<bool>(builder), "no builder registered for %s",
                    SchedKindName(spec.kind));
  MadeScheduler made = builder(spec);
  TABLEAU_CHECK_MSG(made.scheduler != nullptr, "builder for %s returned null",
                    SchedKindName(spec.kind));
  return made;
}

void RegisterScheduler(SchedKind kind, SchedulerBuilder builder) {
  const auto index = static_cast<std::size_t>(kind);
  TABLEAU_CHECK(index < kNumSchedKinds);
  Registry()[index] = builder ? std::move(builder) : DefaultBuilder(kind);
}

}  // namespace tableau
