// Scheduler factory (api_redesign): the single place that knows how to turn
// a SchedKind into a concrete VcpuScheduler. Everything above this layer —
// harness, benches, tools — names schedulers by SchedKind (or its string
// form) and never switch-cases over the enum.
//
// Note a deliberate divergence from a Machine*-taking factory: the Machine
// takes ownership of its scheduler at construction, so the factory runs
// *before* any Machine exists and takes a plain SchedulerSpec (the
// scheduler-relevant slice of ScenarioConfig) instead.
#ifndef SRC_SCHEDULERS_FACTORY_H_
#define SRC_SCHEDULERS_FACTORY_H_

#include <functional>
#include <memory>
#include <optional>
#include <string_view>

#include "src/common/time.h"
#include "src/hypervisor/scheduler.h"
#include "src/schedulers/tableau_scheduler.h"

namespace tableau {

enum class SchedKind { kCredit, kCredit2, kRtds, kTableau, kCfs };

// All kinds, in registry order (handy for sweeps).
inline constexpr SchedKind kAllSchedKinds[] = {
    SchedKind::kCredit, SchedKind::kCredit2, SchedKind::kRtds, SchedKind::kTableau,
    SchedKind::kCfs,
};

// Display name ("Credit", "Credit2", "RTDS", "Tableau", "CFS").
const char* SchedKindName(SchedKind kind);

// Inverse of SchedKindName, case-insensitively (accepts "tableau", "RTDS",
// "Credit2", ...). Returns nullopt for unknown names; round-trips every kind:
// SchedKindFromName(SchedKindName(k)) == k.
std::optional<SchedKind> SchedKindFromName(std::string_view name);

// The scheduler-relevant slice of a scenario configuration.
struct SchedulerSpec {
  SchedKind kind = SchedKind::kTableau;
  // Capped (reservation-enforcing) scenario: Tableau runs without its
  // second-level scheduler, RTDS requires it, Credit2 refuses it (Sec. 7.2).
  bool capped = false;
  TimeNs credit_timeslice = 5 * kMillisecond;
  // Tableau-only dispatcher knobs (defaults match TableauDispatcher::Config).
  TimeNs second_level_epoch = 10 * kMillisecond;
  TimeNs switch_slip_tolerance = kTimeNever;
};

struct MadeScheduler {
  std::unique_ptr<VcpuScheduler> scheduler;
  // Non-owning view of the scheduler when kind == kTableau, else null.
  TableauScheduler* tableau = nullptr;
};

// Constructs the scheduler described by `spec` via the registry. Checks the
// spec invariants (Credit2 vs caps, RTDS vs no-caps) exactly as the harness
// switch-case used to.
MadeScheduler MakeScheduler(const SchedulerSpec& spec);

// Registry hook: replaces the builder for `kind` (tests, experimental
// schedulers). The default registry covers every SchedKind; pass nullptr to
// restore the built-in builder.
using SchedulerBuilder = std::function<MadeScheduler(const SchedulerSpec&)>;
void RegisterScheduler(SchedKind kind, SchedulerBuilder builder);

}  // namespace tableau

#endif  // SRC_SCHEDULERS_FACTORY_H_
