#include "src/schedulers/credit2.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/math_util.h"

namespace tableau {

int Credit2Scheduler::NumSockets() const {
  return static_cast<int>(
      CeilDiv(machine_->num_cpus(), machine_->config().cores_per_socket));
}

void Credit2Scheduler::Attach(Machine* machine) {
  VcpuScheduler::Attach(machine);
  runq_.assign(static_cast<std::size_t>(NumSockets()), {});
  locks_.assign(static_cast<std::size_t>(NumSockets()), LockModel{});
  m_lock_acquire_ns_ = machine->metrics().GetHistogram("credit2.lock_acquire_ns");
}

void Credit2Scheduler::AddVcpu(Vcpu* vcpu) {
  const auto id = static_cast<std::size_t>(vcpu->id());
  if (info_.size() <= id) {
    info_.resize(id + 1);
  }
  VcpuInfo& info = info_[id];
  info.vcpu = vcpu;
  info.credit = options_.credit_init;
  info.socket = machine_->SocketOf(static_cast<CpuId>(id) % machine_->num_cpus());
}

TimeNs Credit2Scheduler::ChargeLock(int socket, TimeNs hold) {
  const TimeNs cost =
      locks_[static_cast<std::size_t>(socket)].Acquire(machine_->Now(), hold);
  m_lock_acquire_ns_->Record(cost);
  machine_->AddOpCost(cost);
  return cost;
}

void Credit2Scheduler::Enqueue(VcpuId id, int socket) {
  VcpuInfo& info = info_[static_cast<std::size_t>(id)];
  if (info.queued) {
    return;
  }
  info.socket = socket;
  info.queued = true;
  runq_[static_cast<std::size_t>(socket)].push_back(id);
}

void Credit2Scheduler::DequeueIfQueued(VcpuId id) {
  VcpuInfo& info = info_[static_cast<std::size_t>(id)];
  if (!info.queued) {
    return;
  }
  auto& queue = runq_[static_cast<std::size_t>(info.socket)];
  queue.erase(std::remove(queue.begin(), queue.end(), id), queue.end());
  info.queued = false;
}

int Credit2Scheduler::BestInQueue(int socket) const {
  const auto& queue = runq_[static_cast<std::size_t>(socket)];
  int best = -1;
  TimeNs best_credit = INT64_MIN;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const VcpuInfo& info = info_[static_cast<std::size_t>(queue[i])];
    if (!info.vcpu->runnable() || info.vcpu->running_on() != kNoCpu) {
      continue;
    }
    if (info.credit > best_credit) {
      best = static_cast<int>(i);
      best_credit = info.credit;
    }
  }
  return best;
}

Decision Credit2Scheduler::PickNext(CpuId cpu) {
  const OverheadCosts& costs = machine_->config().costs;
  const int socket = machine_->SocketOf(cpu);
  auto& queue = runq_[static_cast<std::size_t>(socket)];

  // The shared runqueue lock is the expensive part of Credit2's hot path:
  // candidate selection plus runqueue load-average bookkeeping.
  const TimeNs hold = costs.lock_base + 11 * costs.cache_same_socket +
                      static_cast<TimeNs>(queue.size()) * costs.runq_entry;
  ChargeLock(socket, hold);

  int best = BestInQueue(socket);
  Decision decision;
  if (best == -1) {
    decision.vcpu = kIdleVcpu;
    decision.until = kTimeNever;
    return decision;
  }
  VcpuId picked = queue[static_cast<std::size_t>(best)];
  if (info_[static_cast<std::size_t>(picked)].credit <= 0) {
    // Credit reset: replenish every vCPU on this runqueue.
    machine_->AddOpCost(static_cast<TimeNs>(queue.size()) * costs.cache_same_socket);
    for (VcpuInfo& info : info_) {
      if (info.vcpu != nullptr && info.socket == socket) {
        info.credit += options_.credit_init;
      }
    }
    best = BestInQueue(socket);
    picked = queue[static_cast<std::size_t>(best)];
  }
  DequeueIfQueued(picked);

  // Credit2 preempts when the running vCPU's credit drops below the best
  // waiter's, bounded by the rate limit and the maximum timeslice — with
  // equally weighted competitors this degenerates to a fine-grained
  // (~ratelimit) rotation.
  const TimeNs credit = info_[static_cast<std::size_t>(picked)].credit;
  TimeNs headroom = options_.max_timeslice;
  const int next_best = BestInQueue(socket);
  if (next_best != -1) {
    const TimeNs next_credit =
        info_[static_cast<std::size_t>(queue[static_cast<std::size_t>(next_best)])].credit;
    headroom = credit - next_credit;
  }
  const TimeNs slice = std::clamp(headroom, options_.ratelimit, options_.max_timeslice);
  decision.vcpu = picked;
  decision.until = machine_->Now() + slice;
  return decision;
}

void Credit2Scheduler::OnWakeup(Vcpu* vcpu) {
  const OverheadCosts& costs = machine_->config().costs;
  VcpuInfo& info = info_[static_cast<std::size_t>(vcpu->id())];
  const int socket = info.socket;

  // Sorted-queue insertion (a pointer walk over the socket's vCPUs), credit
  // recomputation, and load tracking, all under the socket lock (Credit2's
  // wakeup is the priciest of the four schedulers, Table 1).
  int socket_members = 0;
  for (const VcpuInfo& other : info_) {
    if (other.vcpu != nullptr && other.socket == socket) {
      ++socket_members;
    }
  }
  const TimeNs hold = costs.lock_base + 14 * costs.cache_same_socket +
                      static_cast<TimeNs>(socket_members) * costs.runq_entry;
  ChargeLock(socket, hold);
  Enqueue(vcpu->id(), socket);

  // Tickle: scan the socket's CPUs for an idle CPU or the lowest-credit
  // runner to preempt.
  const int cores = machine_->config().cores_per_socket;
  const CpuId first = socket * cores;
  const CpuId last = std::min(machine_->num_cpus(), first + cores);
  CpuId idle_cpu = kNoCpu;
  CpuId lowest_cpu = kNoCpu;
  TimeNs lowest_credit = INT64_MAX;
  machine_->AddOpCost(static_cast<TimeNs>(last - first) * costs.cache_same_socket);
  for (CpuId candidate = first; candidate < last; ++candidate) {
    const Vcpu* running = machine_->RunningOn(candidate);
    if (running == nullptr) {
      idle_cpu = candidate;
      break;
    }
    const TimeNs credit = info_[static_cast<std::size_t>(running->id())].credit;
    if (credit < lowest_credit) {
      lowest_credit = credit;
      lowest_cpu = candidate;
    }
  }
  if (idle_cpu != kNoCpu) {
    machine_->KickCpu(idle_cpu, /*remote=*/true);
  } else if (lowest_cpu != kNoCpu && info.credit > lowest_credit) {
    machine_->KickCpu(lowest_cpu, /*remote=*/true);
  }
}

void Credit2Scheduler::OnBlock(Vcpu* vcpu, CpuId cpu) {
  (void)cpu;
  machine_->AddOpCost(machine_->config().costs.cache_same_socket);
  DequeueIfQueued(vcpu->id());
}

void Credit2Scheduler::OnDeschedule(Vcpu* vcpu, CpuId cpu, DeschedReason reason) {
  (void)reason;
  const OverheadCosts& costs = machine_->config().costs;
  const int socket = machine_->SocketOf(cpu);
  // Re-insert under the runqueue lock and run the cross-runqueue balance
  // check (remote-socket load probe): this is why Credit2's post-schedule
  // work is much pricier than Credit's (Table 1).
  const TimeNs hold = costs.lock_base + 8 * costs.cache_same_socket +
                      6 * costs.cache_remote_socket +
                      static_cast<TimeNs>(runq_[static_cast<std::size_t>(socket)].size()) *
                          costs.runq_entry;
  ChargeLock(socket, hold);
  Enqueue(vcpu->id(), socket);

  // Balance: move the vCPU to another socket if that queue is much shorter.
  const int sockets = NumSockets();
  for (int other = 0; other < sockets; ++other) {
    if (other == socket) {
      continue;
    }
    if (runq_[static_cast<std::size_t>(other)].size() + 2 <=
        runq_[static_cast<std::size_t>(socket)].size()) {
      DequeueIfQueued(vcpu->id());
      Enqueue(vcpu->id(), other);
      machine_->AddOpCost(costs.cache_remote_socket);
      break;
    }
  }
}

void Credit2Scheduler::OnServiceAccrued(Vcpu* vcpu, CpuId cpu, TimeNs amount) {
  (void)cpu;
  info_[static_cast<std::size_t>(vcpu->id())].credit -= amount;
}

}  // namespace tableau
