#include "src/schedulers/cfs.h"

#include <algorithm>

#include "src/common/check.h"

namespace tableau {

void CfsScheduler::Attach(Machine* machine) {
  VcpuScheduler::Attach(machine);
  m_steals_ = machine->metrics().GetCounter("cfs.steals");
}

void CfsScheduler::AddVcpu(Vcpu* vcpu) {
  const auto id = static_cast<std::size_t>(vcpu->id());
  if (info_.size() <= id) {
    info_.resize(id + 1);
  }
  VcpuInfo& info = info_[id];
  info.vcpu = vcpu;
  info.cpu = static_cast<CpuId>(id) % machine_->num_cpus();
}

void CfsScheduler::Start() {
  runq_.assign(static_cast<std::size_t>(machine_->num_cpus()), {});
  machine_->sim().SchedulePeriodic(machine_->Now() + options_.balance_interval,
                                   options_.balance_interval, [this] { PeriodicBalance(); });
  machine_->sim().SchedulePeriodic(machine_->Now() + options_.bandwidth_period,
                                   options_.bandwidth_period, [this] { BandwidthRefresh(); });
}

void CfsScheduler::Enqueue(VcpuId id, CpuId cpu) {
  VcpuInfo& info = info_[static_cast<std::size_t>(id)];
  if (info.queued) {
    return;
  }
  info.cpu = cpu;
  info.queued = true;
  runq_[static_cast<std::size_t>(cpu)].push_back(id);
}

void CfsScheduler::DequeueIfQueued(VcpuId id) {
  VcpuInfo& info = info_[static_cast<std::size_t>(id)];
  if (!info.queued) {
    return;
  }
  auto& queue = runq_[static_cast<std::size_t>(info.cpu)];
  queue.erase(std::remove(queue.begin(), queue.end(), id), queue.end());
  info.queued = false;
}

int CfsScheduler::MinVruntimeInQueue(CpuId cpu) const {
  const auto& queue = runq_[static_cast<std::size_t>(cpu)];
  int best = -1;
  double best_vruntime = 0;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const VcpuInfo& info = info_[static_cast<std::size_t>(queue[i])];
    if (info.throttled || !info.vcpu->runnable() || info.vcpu->running_on() != kNoCpu) {
      continue;
    }
    if (best == -1 || info.vruntime < best_vruntime) {
      best = static_cast<int>(i);
      best_vruntime = info.vruntime;
    }
  }
  return best;
}

double CfsScheduler::MinVruntime(CpuId cpu) const {
  double min_vruntime = 0;
  bool any = false;
  for (const VcpuId id : runq_[static_cast<std::size_t>(cpu)]) {
    const VcpuInfo& info = info_[static_cast<std::size_t>(id)];
    if (!any || info.vruntime < min_vruntime) {
      min_vruntime = info.vruntime;
      any = true;
    }
  }
  const Vcpu* running = machine_->RunningOn(cpu);
  if (running != nullptr) {
    const VcpuInfo& info = info_[static_cast<std::size_t>(running->id())];
    if (!any || info.vruntime < min_vruntime) {
      min_vruntime = info.vruntime;
      any = true;
    }
  }
  return min_vruntime;
}

Decision CfsScheduler::PickNext(CpuId cpu) {
  const OverheadCosts& costs = machine_->config().costs;
  auto& queue = runq_[static_cast<std::size_t>(cpu)];
  // rbtree leftmost lookup + accounting updates.
  machine_->AddOpCost(costs.lock_base + 6 * costs.cache_local +
                      static_cast<TimeNs>(queue.size()) * costs.runq_entry / 2);

  int best = MinVruntimeInQueue(cpu);
  if (best == -1) {
    // Idle balancing: pull the runnable vCPU with the smallest vruntime off
    // the busiest other runqueue.
    CpuId busiest = kNoCpu;
    std::size_t busiest_len = 1;  // Need at least 2 runnable to justify a pull.
    for (CpuId other = 0; other < machine_->num_cpus(); ++other) {
      if (other == cpu) {
        continue;
      }
      machine_->AddOpCost(machine_->SocketOf(other) == machine_->SocketOf(cpu)
                              ? costs.cache_same_socket
                              : costs.cache_remote_socket);
      const std::size_t len = runq_[static_cast<std::size_t>(other)].size();
      if (len > busiest_len) {
        busiest_len = len;
        busiest = other;
      }
    }
    if (busiest != kNoCpu) {
      const int steal = MinVruntimeInQueue(busiest);
      if (steal != -1) {
        const VcpuId stolen =
            runq_[static_cast<std::size_t>(busiest)][static_cast<std::size_t>(steal)];
        machine_->AddOpCost(costs.lock_base + 2 * costs.cache_remote_socket);
        DequeueIfQueued(stolen);
        Enqueue(stolen, cpu);
        m_steals_->Increment();
        best = MinVruntimeInQueue(cpu);
      }
    }
  }

  Decision decision;
  if (best == -1) {
    decision.vcpu = kIdleVcpu;
    decision.until = kTimeNever;
    return decision;
  }
  const VcpuId picked = queue[static_cast<std::size_t>(best)];
  DequeueIfQueued(picked);

  // Slice: sched_latency divided among runnable entities, floored at the
  // minimum granularity. Capped vCPUs additionally stop at their remaining
  // bandwidth quota (update_curr's per-tick accounting).
  const std::size_t runnable = queue.size() + 1;
  TimeNs slice = std::max(options_.min_granularity,
                          options_.sched_latency / static_cast<TimeNs>(runnable));
  const VcpuInfo& picked_info = info_[static_cast<std::size_t>(picked)];
  const double cap = picked_info.vcpu->params().cap;
  if (cap > 0) {
    const TimeNs quota =
        static_cast<TimeNs>(cap * static_cast<double>(options_.bandwidth_period));
    const TimeNs remaining = quota - picked_info.consumed_in_period;
    slice = std::max<TimeNs>(100 * kMicrosecond, std::min(slice, remaining));
  }
  decision.vcpu = picked;
  decision.until = machine_->Now() + slice;
  return decision;
}

void CfsScheduler::OnWakeup(Vcpu* vcpu) {
  const OverheadCosts& costs = machine_->config().costs;
  VcpuInfo& info = info_[static_cast<std::size_t>(vcpu->id())];
  machine_->AddOpCost(costs.lock_base + 6 * costs.cache_local);

  const CpuId target = vcpu->last_cpu() == kNoCpu ? info.cpu : vcpu->last_cpu();
  // Sleeper fairness: place the waker no earlier than min_vruntime minus
  // half a latency period ("gentle fair sleepers"); without the gentle
  // variant, a long sleeper keeps its (tiny) vruntime and can starve others.
  if (options_.gentle_fair_sleepers) {
    const double floor_vruntime =
        MinVruntime(target) - static_cast<double>(options_.sched_latency) / 2;
    info.vruntime = std::max(info.vruntime, floor_vruntime);
  }
  Enqueue(vcpu->id(), target);

  const Vcpu* running = machine_->RunningOn(target);
  if (running == nullptr) {
    machine_->KickCpu(target, /*remote=*/true);
  } else {
    // Wakeup preemption: preempt if the waker's vruntime is sufficiently
    // behind the runner's (wakeup_granularity ~ min_granularity).
    const VcpuInfo& running_info = info_[static_cast<std::size_t>(running->id())];
    if (info.vruntime + static_cast<double>(options_.min_granularity) <
        running_info.vruntime) {
      machine_->KickCpu(target, /*remote=*/true);
    }
  }
}

void CfsScheduler::OnBlock(Vcpu* vcpu, CpuId cpu) {
  (void)cpu;
  machine_->AddOpCost(machine_->config().costs.cache_local);
  DequeueIfQueued(vcpu->id());
}

void CfsScheduler::OnDeschedule(Vcpu* vcpu, CpuId cpu, DeschedReason reason) {
  (void)reason;
  const OverheadCosts& costs = machine_->config().costs;
  machine_->AddOpCost(2 * costs.cache_local + costs.runq_entry);
  VcpuInfo& info = info_[static_cast<std::size_t>(vcpu->id())];
  if (!info.throttled) {
    Enqueue(vcpu->id(), cpu);
  }
}

void CfsScheduler::OnServiceAccrued(Vcpu* vcpu, CpuId cpu, TimeNs amount) {
  VcpuInfo& info = info_[static_cast<std::size_t>(vcpu->id())];
  // vruntime advances inversely to weight (nice-0 load = 256 here).
  info.vruntime +=
      static_cast<double>(amount) * 256.0 / static_cast<double>(vcpu->params().weight);
  const double cap = vcpu->params().cap;
  if (cap > 0) {
    info.consumed_in_period += amount;
    const TimeNs quota =
        static_cast<TimeNs>(cap * static_cast<double>(options_.bandwidth_period));
    if (info.consumed_in_period >= quota && !info.throttled) {
      // CFS bandwidth control: throttled until the next period refresh.
      info.throttled = true;
      DequeueIfQueued(vcpu->id());
      if (vcpu->running_on() != kNoCpu) {
        machine_->KickCpu(cpu, /*remote=*/false);
      }
    }
  }
}

void CfsScheduler::PeriodicBalance() {
  // Active balancing: move one vCPU from the longest to the shortest queue
  // when the imbalance is at least two (Lozi et al. document how coarse this
  // heuristic is in practice).
  const OverheadCosts& costs = machine_->config().costs;
  CpuId longest = 0;
  CpuId shortest = 0;
  for (CpuId cpu = 0; cpu < machine_->num_cpus(); ++cpu) {
    const std::size_t len = runq_[static_cast<std::size_t>(cpu)].size();
    if (len > runq_[static_cast<std::size_t>(longest)].size()) {
      longest = cpu;
    }
    if (len < runq_[static_cast<std::size_t>(shortest)].size()) {
      shortest = cpu;
    }
  }
  if (runq_[static_cast<std::size_t>(longest)].size() >=
      runq_[static_cast<std::size_t>(shortest)].size() + 2) {
    const int moved = MinVruntimeInQueue(longest);
    if (moved != -1) {
      const VcpuId id =
          runq_[static_cast<std::size_t>(longest)][static_cast<std::size_t>(moved)];
      DequeueIfQueued(id);
      Enqueue(id, shortest);
      machine_->KickCpu(shortest, /*remote=*/true);
    }
  }
  machine_->ChargeBackground(
      0, costs.lock_base +
             static_cast<TimeNs>(machine_->num_cpus()) * costs.cache_same_socket);
  // Periodic timer; re-armed automatically.
}

void CfsScheduler::BandwidthRefresh() {
  for (VcpuInfo& info : info_) {
    if (info.vcpu == nullptr) {
      continue;
    }
    info.consumed_in_period = 0;
    if (info.throttled) {
      info.throttled = false;
      if (info.vcpu->runnable() && info.vcpu->running_on() == kNoCpu) {
        Enqueue(info.vcpu->id(), info.cpu);
        machine_->KickCpu(info.cpu, /*remote=*/true);
      }
    }
  }
  // Periodic timer; re-armed automatically.
}

}  // namespace tableau
