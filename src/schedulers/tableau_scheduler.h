// Hypervisor adapter wiring the Tableau dispatcher (src/core/dispatcher) to
// the simulated machine: implements the VcpuScheduler hooks, the vCPU
// ownership hand-off for split vCPUs (Sec. 6, "Cross-core migrations"), and
// table-guided wake-up IPIs (Sec. 6, "Efficient wake-ups"), charging the
// corresponding costs (the hot path touches at most two cache lines).
#ifndef SRC_SCHEDULERS_TABLEAU_SCHEDULER_H_
#define SRC_SCHEDULERS_TABLEAU_SCHEDULER_H_

#include <map>
#include <memory>
#include <vector>

#include "src/core/dispatcher.h"
#include "src/hypervisor/machine.h"
#include "src/hypervisor/scheduler.h"

namespace tableau {

class TableauScheduler : public VcpuScheduler {
 public:
  explicit TableauScheduler(TableauDispatcher::Config config);

  // Installs a scheduling table. Must be called at least once before
  // Start(); later calls follow the time-synchronized switch protocol.
  void PushTable(std::shared_ptr<const SchedulingTable> table);

  TableauDispatcher& dispatcher() { return *dispatcher_; }

  // VcpuScheduler:
  std::string Name() const override { return "Tableau"; }
  void Attach(Machine* machine) override;
  void AddVcpu(Vcpu* vcpu) override;
  Decision PickNext(CpuId cpu) override;
  void OnWakeup(Vcpu* vcpu) override;
  void OnBlock(Vcpu* vcpu, CpuId cpu) override;
  void OnDeschedule(Vcpu* vcpu, CpuId cpu, DeschedReason reason) override;
  void OnServiceAccrued(Vcpu* vcpu, CpuId cpu, TimeNs amount) override;
  bool table_driven() const override { return true; }

 private:
  // Whether a vCPU may take part in second-level scheduling.
  bool EligibleForSecondLevel(VcpuId id) const;

  TableauDispatcher::Config config_;
  std::unique_ptr<TableauDispatcher> dispatcher_;
  std::vector<Vcpu*> vcpus_;

  // Split-vCPU hand-off: cpu waiting for the vCPU to be descheduled
  // elsewhere, keyed by vCPU id ("request an IPI to be sent when the vCPU is
  // de-scheduled").
  std::map<VcpuId, CpuId> pending_handoff_;

  // vCPU currently running on each CPU from a second-level decision (or
  // kIdleVcpu), for budget accrual.
  std::vector<VcpuId> second_level_running_;

  // Last table generation observed, for emitting table-switch trace events.
  std::uint64_t seen_generation_ = 0;

  // Blackout window: gap between a reserved vCPU last being serviceable
  // (descheduled or woken) and its next first-level dispatch.
  obs::LatencyHistogram* m_blackout_ns_ = nullptr;
};

}  // namespace tableau

#endif  // SRC_SCHEDULERS_TABLEAU_SCHEDULER_H_
