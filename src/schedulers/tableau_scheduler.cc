#include "src/schedulers/tableau_scheduler.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/obs/telemetry.h"

namespace tableau {

TableauScheduler::TableauScheduler(TableauDispatcher::Config config) : config_(config) {}

void TableauScheduler::Attach(Machine* machine) {
  VcpuScheduler::Attach(machine);
  dispatcher_ = std::make_unique<TableauDispatcher>(machine->num_cpus(), config_);
  dispatcher_->AttachMetrics(&machine->metrics());
  m_blackout_ns_ = machine->metrics().GetHistogram("tableau.blackout_ns");
  second_level_running_.assign(static_cast<std::size_t>(machine->num_cpus()), kIdleVcpu);
}

void TableauScheduler::PushTable(std::shared_ptr<const SchedulingTable> table) {
  TABLEAU_CHECK(dispatcher_ != nullptr);
  dispatcher_->InstallTable(std::move(table), machine_->Now());
}

void TableauScheduler::AddVcpu(Vcpu* vcpu) {
  const auto id = static_cast<std::size_t>(vcpu->id());
  if (vcpus_.size() <= id) {
    vcpus_.resize(id + 1, nullptr);
  }
  vcpus_[id] = vcpu;
}

bool TableauScheduler::EligibleForSecondLevel(VcpuId id) const {
  const Vcpu* vcpu = vcpus_[static_cast<std::size_t>(id)];
  if (vcpu == nullptr) {
    return false;
  }
  // Capped vCPUs never exceed their reservation; vCPUs already running
  // elsewhere cannot be dispatched here.
  return vcpu->params().cap == 0.0 && vcpu->runnable() && vcpu->running_on() == kNoCpu;
}

Decision TableauScheduler::PickNext(CpuId cpu) {
  const TimeNs now = machine_->Now();
  const OverheadCosts& costs = machine_->config().costs;
  // Hot path: slice-table lookup touches at most two cache lines (Sec. 6).
  machine_->AddOpCost(2 * costs.cache_local);

  const TableauDispatcher::SlotInfo slot = dispatcher_->LookupSlot(cpu, now);
  if (dispatcher_->table_generation() != seen_generation_) {
    seen_generation_ = dispatcher_->table_generation();
    machine_->trace().Record(now, TraceEvent::kTableSwitch, cpu, kIdleVcpu,
                             static_cast<std::int64_t>(seen_generation_));
    if (machine_->telemetry() != nullptr) {
      machine_->telemetry()->OnTableSwitch(now,
                                           dispatcher_->last_switch_slip());
    }
  }
  // The slot-end timer is reprogrammed on every decision.
  machine_->AddOpCost(costs.timer_program);
  second_level_running_[static_cast<std::size_t>(cpu)] = kIdleVcpu;

  if (slot.vcpu != kIdleVcpu) {
    Vcpu* reserved = vcpus_[static_cast<std::size_t>(slot.vcpu)];
    TABLEAU_CHECK(reserved != nullptr);
    if (reserved->runnable()) {
      if (reserved->running_on() == kNoCpu) {
        pending_handoff_.erase(slot.vcpu);
        if (reserved->dispatch_count() > 0) {
          const TimeNs serviceable_since =
              std::max(reserved->last_service_end(), reserved->wake_time());
          m_blackout_ns_->Record(now - serviceable_since);
        }
        Decision decision;
        decision.vcpu = slot.vcpu;
        decision.until = slot.slot_end;
        return decision;
      }
      // Still scheduled on another core (allocation hand-off race): request
      // an IPI when it is descheduled there, and fall through to the second
      // level. Cost: one atomic write to the vCPU control block.
      machine_->AddOpCost(costs.cache_same_socket);
      pending_handoff_[slot.vcpu] = cpu;
    }
  }

  // Second level: core-local epoch-based fair share over idle/blocked slots.
  const std::size_t locals = dispatcher_->ActiveTable(now).cpu(cpu).local_vcpus.size();
  if (config_.work_conserving && locals > 0) {
    machine_->AddOpCost(static_cast<TimeNs>(locals) * machine_->config().costs.cache_local);
  }
  const TableauDispatcher::SecondLevelPick pick = dispatcher_->PickSecondLevel(
      cpu, now, slot.slot_end, [this](VcpuId id) { return EligibleForSecondLevel(id); });
  if (pick.vcpu != kIdleVcpu) {
    second_level_running_[static_cast<std::size_t>(cpu)] = pick.vcpu;
    Decision decision;
    decision.vcpu = pick.vcpu;
    decision.until = pick.until;
    decision.second_level = true;
    return decision;
  }

  Decision decision;
  decision.vcpu = kIdleVcpu;
  decision.until = slot.slot_end;
  return decision;
}

void TableauScheduler::OnWakeup(Vcpu* vcpu) {
  const TimeNs now = machine_->Now();
  const OverheadCosts& costs = machine_->config().costs;
  // Table lookup of the responsible core (two cache lines) plus the
  // slot-activity check and the vCPU control block update.
  machine_->AddOpCost(4 * costs.cache_local + costs.cache_same_socket);

  int target = dispatcher_->WakeupTargetCpu(vcpu->id(), now);
  if (target < 0) {
    target = vcpu->last_cpu() == kNoCpu ? 0 : vcpu->last_cpu();
  }
  // Send an IPI if the vCPU's own slot is active on the target core, or (in
  // work-conserving mode) if the target core currently idles.
  const bool own_slot_active = dispatcher_->InOwnSlot(vcpu->id(), target, now);
  const bool target_idle = machine_->RunningOn(target) == nullptr;
  if (own_slot_active || (config_.work_conserving && target_idle)) {
    machine_->KickCpu(target, /*remote=*/true);
  }
}

void TableauScheduler::OnBlock(Vcpu* vcpu, CpuId cpu) {
  (void)vcpu;
  (void)cpu;
  machine_->AddOpCost(machine_->config().costs.cache_local);
}

void TableauScheduler::OnDeschedule(Vcpu* vcpu, CpuId cpu, DeschedReason reason) {
  (void)cpu;
  (void)reason;
  const OverheadCosts& costs = machine_->config().costs;
  // Release ownership: an atomic write to the vCPU control block, state
  // bookkeeping, and reprogramming the slot timer.
  machine_->AddOpCost(costs.cache_same_socket + 3 * costs.cache_local +
                      costs.timer_program);
  const auto it = pending_handoff_.find(vcpu->id());
  if (it != pending_handoff_.end()) {
    const CpuId waiting = it->second;
    pending_handoff_.erase(it);
    machine_->KickCpu(waiting, /*remote=*/true);
  }
}

void TableauScheduler::OnServiceAccrued(Vcpu* vcpu, CpuId cpu, TimeNs amount) {
  if (second_level_running_[static_cast<std::size_t>(cpu)] == vcpu->id()) {
    dispatcher_->AccrueSecondLevel(cpu, vcpu->id(), amount);
  }
}

}  // namespace tableau
