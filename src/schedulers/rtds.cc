#include "src/schedulers/rtds.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/rt/hyperperiod.h"

namespace tableau {

void RtdsScheduler::AddVcpu(Vcpu* vcpu) {
  const auto id = static_cast<std::size_t>(vcpu->id());
  if (info_.size() <= id) {
    info_.resize(id + 1);
  }
  VcpuInfo& info = info_[id];
  info.vcpu = vcpu;

  // Derive (budget, period) from the reservation exactly as Tableau's
  // planner does, per the paper's "configured to match" setup.
  VcpuRequest request;
  request.vcpu = vcpu->id();
  request.utilization = vcpu->params().utilization;
  request.latency_goal = vcpu->params().latency_goal;
  const std::optional<TaskMapping> mapping = MapRequestToTask(request);
  TABLEAU_CHECK_MSG(mapping.has_value(), "RTDS vCPU %d needs a (U, L) reservation",
                    vcpu->id());
  info.budget_max = mapping->task.cost;
  info.period = mapping->task.period;
  info.budget = info.budget_max;
  info.deadline = info.period;
}

void RtdsScheduler::Start() {
  // Stagger the period grid across vCPUs: in Xen, a vCPU's deadline is set
  // when it first wakes, so reservations are not phase-aligned. Without
  // this, all replenishments land on the same instants and the global lock
  // sees synchronized storms no real deployment would produce.
  const std::size_t count = info_.size();
  std::size_t index = 0;
  for (VcpuInfo& info : info_) {
    if (info.vcpu != nullptr) {
      info.deadline += static_cast<TimeNs>(index) * info.period /
                       static_cast<TimeNs>(count);
      ++index;
      const VcpuId id = info.vcpu->id();
      info.timer = machine_->sim().CreateTimer([this, id] { Replenish(id); });
      machine_->sim().Arm(info.timer, info.deadline);
    }
  }
}

void RtdsScheduler::Attach(Machine* machine) {
  VcpuScheduler::Attach(machine);
  obs::MetricsRegistry& metrics = machine->metrics();
  m_lock_acquire_ns_ = metrics.GetHistogram("rtds.lock_acquire_ns");
  m_lock_timeouts_ = metrics.GetCounter("rtds.lock_timeouts");
}

void RtdsScheduler::ChargeGlobalLock(TimeNs hold) {
  const TimeNs cost = global_lock_.Acquire(machine_->Now(), hold);
  m_lock_acquire_ns_->Record(cost);
  machine_->AddOpCost(cost);
}

void RtdsScheduler::ChargeGlobalLockBounded(TimeNs hold, TimeNs patience) {
  const LockModel::Acquisition acq =
      global_lock_.AcquireWithPatience(machine_->Now(), hold, patience);
  m_lock_acquire_ns_->Record(acq.cost);
  if (!acq.acquired) {
    m_lock_timeouts_->Increment();
  }
  machine_->AddOpCost(acq.cost);
}

void RtdsScheduler::Replenish(VcpuId id) {
  VcpuInfo& info = info_[static_cast<std::size_t>(id)];
  const TimeNs now = machine_->Now();
  // Replenishment handler: RTDS batches replenishments in a dedicated timer
  // handler, so we charge a short fixed cost rather than a full lock round.
  const OverheadCosts& costs = machine_->config().costs;
  const CpuId on = info.vcpu->last_cpu() == kNoCpu ? 0 : info.vcpu->last_cpu();
  machine_->ChargeBackground(on, costs.lock_base + 2 * costs.cache_local);

  // Charge consumption so far against the old budget before refilling;
  // otherwise a vCPU running across its period boundary would have its
  // whole slice billed to the fresh budget.
  if (info.vcpu->running_on() != kNoCpu) {
    machine_->SettleAccounting(info.vcpu->running_on());
  }
  info.budget = info.budget_max;
  while (info.deadline <= now) {
    info.deadline += info.period;
  }
  // Mid-callback self re-arm: the engine assigns the FIFO sequence here (at
  // the call), so ordering against the Tickle kicks below is preserved.
  machine_->sim().Arm(info.timer, info.deadline);

  if (info.vcpu->runnable() && info.vcpu->running_on() == kNoCpu) {
    Tickle(info);
  }
}

void RtdsScheduler::Tickle(const VcpuInfo& info) {
  const OverheadCosts& costs = machine_->config().costs;
  // Scan all CPUs for an idle one, else the latest-deadline runner.
  machine_->AddOpCost(static_cast<TimeNs>(machine_->num_cpus()) * costs.cache_local);
  CpuId idle_cpu = kNoCpu;
  CpuId latest_cpu = kNoCpu;
  TimeNs latest_deadline = 0;
  for (CpuId cpu = 0; cpu < machine_->num_cpus(); ++cpu) {
    const Vcpu* running = machine_->RunningOn(cpu);
    if (running == nullptr) {
      idle_cpu = cpu;
      break;
    }
    const VcpuInfo& other = info_[static_cast<std::size_t>(running->id())];
    if (other.deadline > latest_deadline) {
      latest_deadline = other.deadline;
      latest_cpu = cpu;
    }
  }
  if (idle_cpu != kNoCpu) {
    machine_->KickCpu(idle_cpu, /*remote=*/true);
  } else if (latest_cpu != kNoCpu && info.deadline < latest_deadline) {
    machine_->KickCpu(latest_cpu, /*remote=*/true);
  }
}

Decision RtdsScheduler::PickNext(CpuId cpu) {
  (void)cpu;
  const OverheadCosts& costs = machine_->config().costs;
  // Global runqueue: lock + EDF scan over all registered vCPUs.
  // The schedule path degrades gracefully under contention (it can pick
  // from per-CPU cached state), so its spin patience is short.
  const TimeNs hold = costs.lock_base + costs.cache_remote_socket +
                      static_cast<TimeNs>(info_.size()) * costs.runq_entry / 12;
  ChargeGlobalLockBounded(hold, 3 * kMicrosecond);
  machine_->AddOpCost(costs.cache_remote_socket);

  const VcpuInfo* best = nullptr;
  for (const VcpuInfo& info : info_) {
    if (info.vcpu == nullptr || !info.vcpu->runnable() ||
        info.vcpu->running_on() != kNoCpu || info.budget <= 0) {
      continue;
    }
    if (best == nullptr || info.deadline < best->deadline) {
      best = &info;
    }
  }

  Decision decision;
  if (best == nullptr) {
    decision.vcpu = kIdleVcpu;
    decision.until = kTimeNever;  // Replenishments and wakeups tickle.
    return decision;
  }
  decision.vcpu = best->vcpu->id();
  // Budget accounting is microsecond-granular in RTDS; floor the slice so
  // dispatch overhead cannot outpace budget consumption.
  decision.until = machine_->Now() + std::max<TimeNs>(best->budget, 100 * kMicrosecond);
  return decision;
}

void RtdsScheduler::OnWakeup(Vcpu* vcpu) {
  VcpuInfo& info = info_[static_cast<std::size_t>(vcpu->id())];
  const OverheadCosts& costs = machine_->config().costs;
  // Runqueue + replenishment-queue updates under the global lock.
  const TimeNs hold = costs.lock_base + 4 * costs.cache_remote_socket +
                      static_cast<TimeNs>(info_.size()) * costs.runq_entry / 7;
  ChargeGlobalLockBounded(hold, 15 * kMicrosecond);

  const TimeNs now = machine_->Now();
  if (info.deadline <= now) {
    // Deadline passed while blocked: start a fresh period now.
    info.budget = info.budget_max;
    info.deadline = now + info.period;
  }
  if (info.budget > 0) {
    Tickle(info);
  }
}

void RtdsScheduler::OnBlock(Vcpu* vcpu, CpuId cpu) {
  (void)vcpu;
  (void)cpu;
  const OverheadCosts& costs = machine_->config().costs;
  ChargeGlobalLockBounded(costs.lock_base + costs.cache_remote_socket, 3 * kMicrosecond);
}

void RtdsScheduler::OnDeschedule(Vcpu* vcpu, CpuId cpu, DeschedReason reason) {
  (void)vcpu;
  (void)cpu;
  (void)reason;
  const OverheadCosts& costs = machine_->config().costs;
  // RTDS's post-schedule path re-inserts into the global runqueue, updates
  // the replenishment queue, and scans CPUs for a migration target, all
  // under the global lock — the hold time scales with machine size, and the
  // queueing behind other CPUs' acquisitions is what explodes on big
  // machines (Table 2).
  // Deadline-sorted runqueue reinsertion is a pointer-chasing walk over the
  // registered vCPUs, plus replenishment-queue maintenance and the CPU scan.
  // The deschedule path cannot shed its work (the vCPU must be reinserted
  // into the deadline queue), so it spins essentially until it wins.
  const TimeNs hold =
      costs.lock_base +
      static_cast<TimeNs>(machine_->num_cpus()) * costs.cache_same_socket +
      6 * static_cast<TimeNs>(info_.size()) * costs.runq_entry / 5;
  ChargeGlobalLockBounded(hold, 170 * kMicrosecond);
  machine_->AddOpCost(2 * costs.cache_remote_socket);
}

void RtdsScheduler::OnServiceAccrued(Vcpu* vcpu, CpuId cpu, TimeNs amount) {
  (void)cpu;
  VcpuInfo& info = info_[static_cast<std::size_t>(vcpu->id())];
  info.budget = std::max<TimeNs>(0, info.budget - amount);
}

}  // namespace tableau
