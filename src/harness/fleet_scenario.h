// Fleet experiment construction: maps a compact experiment description
// (host shape x VM reservation stream) onto a fleet::ClusterConfig. Shared
// by bench_fleet, the tableau_fleetctl CLI, and the fleet tests so the
// 64-host determinism scenario is one definition, not three copies.
#ifndef SRC_HARNESS_FLEET_SCENARIO_H_
#define SRC_HARNESS_FLEET_SCENARIO_H_

#include <cstdint>
#include <vector>

#include "src/fleet/cluster.h"

namespace tableau {

struct FleetScenarioConfig {
  // --- Fleet shape ---
  int num_hosts = 4;
  int cpus_per_host = 16;
  int cores_per_socket = 8;
  int slots_per_core = 4;
  // --- Execution mode (determinism: results are byte-identical across all
  // combinations; see ShardedSimulation) ---
  bool sharded = false;
  bool parallel = false;
  int num_threads = 0;
  TimeNs epoch_ns = 50'000;
  // --- Control plane ---
  TimeNs control_period = 10 * kMillisecond;
  fleet::PlacementPolicy placement = fleet::PlacementPolicy::kWorstFit;
  double max_committed = 0.9;
  // Placement-decision-to-activation delay (the placement RPC plus guest
  // boot). Scenarios that admit VMs mid-run should keep this at or above
  // two table rounds (~2 * kHyperperiodNs): a pushed table engages at the
  // current table's round wrap, so a shorter delay has the stream posting
  // requests before the VM's slices are live (capped hosts leave it dark).
  TimeNs admission_latency = 200 * kMicrosecond;
  double migrate_burn_threshold = 1.5;
  std::uint64_t min_requests_before_migration = 50;
  // --- VM reservation stream (open-loop constant-rate clients) ---
  int num_vms = 64;
  double utilization = 0.25;
  TimeNs latency_goal = 20 * kMillisecond;
  double requests_per_sec = 200;
  TimeNs service_ns = 500 * kMicrosecond;
  // Arrivals staggered deterministically (seeded Rng) over [0, spread].
  // 0 = all VMs arrive at time zero.
  TimeNs arrival_spread = 0;
  std::uint64_t seed = 1;
  // Scripted overload: the first `surge_vms` VMs multiply their service
  // demand by surge_factor over [surge_at, surge_until) — open-ended by
  // default (the migration trigger); bounded = a flash crowd.
  int surge_vms = 0;
  TimeNs surge_at = kTimeNever;
  TimeNs surge_until = kTimeNever;
  double surge_factor = 1.0;
  // --- Demand shape (diurnal load for the adaptive experiments) ---
  fleet::DemandShape shape = fleet::DemandShape::kConstant;
  TimeNs shape_period = 800 * kMillisecond;
  double shape_min = 1.0;
  double shape_max = 1.0;
  // Spread VM phases evenly across the period so the fleet-wide aggregate
  // stays near the diurnal mean while each VM still swings full-range.
  bool stagger_phases = false;
  // --- Closed-loop adaptive reservations (src/adapt) ---
  bool adaptive = false;
  adapt::PolicyConfig adapt_policy;
  double adapt_min_utilization = 1.0 / 32;
  double adapt_max_utilization = 1.0;
  // Graceful degradation budget for overloaded resizes (PR 4 machinery).
  int max_latency_degradations = 0;
};

// Builds the full cluster configuration: per-host telemetry windows aligned
// with the control period (SLO gauges sampled at tick barriers) and the VM
// reservation list derived from the stream parameters above.
fleet::ClusterConfig BuildFleetConfig(const FleetScenarioConfig& config);

}  // namespace tableau

#endif  // SRC_HARNESS_FLEET_SCENARIO_H_
