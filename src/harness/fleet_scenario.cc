#include "src/harness/fleet_scenario.h"

#include "src/common/check.h"
#include "src/common/rng.h"

namespace tableau {

fleet::ClusterConfig BuildFleetConfig(const FleetScenarioConfig& config) {
  TABLEAU_CHECK(config.num_hosts >= 1 && config.num_vms >= 0);
  fleet::ClusterConfig cluster;
  cluster.num_hosts = config.num_hosts;
  cluster.sim.epoch_ns = config.epoch_ns;
  cluster.sim.sharded = config.sharded;
  cluster.sim.parallel = config.parallel;
  cluster.sim.num_threads = config.num_threads;
  cluster.control_period = config.control_period;
  cluster.placement = config.placement;
  cluster.max_committed = config.max_committed;
  cluster.migrate_burn_threshold = config.migrate_burn_threshold;
  cluster.min_requests_before_migration = config.min_requests_before_migration;

  cluster.host.num_cpus = config.cpus_per_host;
  cluster.host.cores_per_socket = config.cores_per_socket;
  cluster.host.slots_per_core = config.slots_per_core;
  // SLO windows align with control ticks: the cadence sample at each
  // barrier closes exactly one telemetry window, so the burn-rate gauges
  // the control plane reads are fresh and mode-independent.
  cluster.host.telemetry.window_ns = config.control_period;
  cluster.host.telemetry.slo.window_ns = config.control_period;
  cluster.host.telemetry.slo.target_latency_ns = config.latency_goal;
  // A fleet host has hundreds of slots; skip per-vCPU series (the per-VM
  // SLO gauges and machine-wide series carry the signal).
  cluster.host.telemetry.max_vcpu_series = 0;

  // Arrival jitter is the only random input, drawn from one seeded stream
  // in vm order — identical across execution modes by construction.
  Rng rng(config.seed);
  cluster.vms.reserve(static_cast<std::size_t>(config.num_vms));
  for (int vm = 0; vm < config.num_vms; ++vm) {
    fleet::VmReservation spec;
    spec.vm = vm;
    spec.utilization = config.utilization;
    spec.latency_goal = config.latency_goal;
    spec.requests_per_sec = config.requests_per_sec;
    spec.service_ns = config.service_ns;
    if (config.arrival_spread > 0) {
      spec.arrival = rng.UniformInt(0, config.arrival_spread);
    }
    if (vm < config.surge_vms) {
      spec.surge_at = config.surge_at;
      spec.surge_factor = config.surge_factor;
    }
    cluster.vms.push_back(spec);
  }
  return cluster;
}

}  // namespace tableau
