#include "src/harness/fleet_scenario.h"

#include "src/common/check.h"
#include "src/common/rng.h"

namespace tableau {

fleet::ClusterConfig BuildFleetConfig(const FleetScenarioConfig& config) {
  TABLEAU_CHECK(config.num_hosts >= 1 && config.num_vms >= 0);
  fleet::ClusterConfig cluster;
  cluster.num_hosts = config.num_hosts;
  cluster.sim.epoch_ns = config.epoch_ns;
  cluster.sim.sharded = config.sharded;
  cluster.sim.parallel = config.parallel;
  cluster.sim.num_threads = config.num_threads;
  cluster.control_period = config.control_period;
  cluster.placement = config.placement;
  cluster.max_committed = config.max_committed;
  cluster.admission_latency = config.admission_latency;
  cluster.migrate_burn_threshold = config.migrate_burn_threshold;
  cluster.min_requests_before_migration = config.min_requests_before_migration;

  cluster.host.num_cpus = config.cpus_per_host;
  cluster.host.cores_per_socket = config.cores_per_socket;
  cluster.host.slots_per_core = config.slots_per_core;
  // SLO windows align with control ticks: the cadence sample at each
  // barrier closes exactly one telemetry window, so the burn-rate gauges
  // the control plane reads are fresh and mode-independent.
  cluster.host.telemetry.window_ns = config.control_period;
  cluster.host.telemetry.slo.window_ns = config.control_period;
  cluster.host.telemetry.slo.target_latency_ns = config.latency_goal;
  // A fleet host has hundreds of slots; skip per-vCPU series (the per-VM
  // SLO gauges and machine-wide series carry the signal; the adaptive
  // controller's window views come from the attributor, not the recorder).
  cluster.host.telemetry.max_vcpu_series = 0;
  cluster.host.max_latency_degradations = config.max_latency_degradations;
  cluster.host.adaptive = config.adaptive;
  cluster.host.adapt_policy = config.adapt_policy;
  cluster.host.adapt_min_utilization = config.adapt_min_utilization;
  cluster.host.adapt_max_utilization = config.adapt_max_utilization;

  // Arrival jitter is the only random input, drawn from one seeded stream
  // in vm order — identical across execution modes by construction.
  Rng rng(config.seed);
  cluster.vms.reserve(static_cast<std::size_t>(config.num_vms));
  for (int vm = 0; vm < config.num_vms; ++vm) {
    fleet::VmReservation spec;
    spec.vm = vm;
    spec.utilization = config.utilization;
    spec.latency_goal = config.latency_goal;
    spec.requests_per_sec = config.requests_per_sec;
    spec.service_ns = config.service_ns;
    if (config.arrival_spread > 0) {
      spec.arrival = rng.UniformInt(0, config.arrival_spread);
    }
    if (vm < config.surge_vms) {
      spec.surge_at = config.surge_at;
      spec.surge_until = config.surge_until;
      spec.surge_factor = config.surge_factor;
    }
    spec.shape = config.shape;
    spec.shape_period = config.shape_period;
    spec.shape_min = config.shape_min;
    spec.shape_max = config.shape_max;
    if (config.stagger_phases && config.num_vms > 0) {
      spec.shape_phase = static_cast<TimeNs>(
          (static_cast<__int128>(config.shape_period) * vm) / config.num_vms);
    }
    cluster.vms.push_back(spec);
  }
  return cluster;
}

}  // namespace tableau
