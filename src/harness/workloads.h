// Workload-population helpers shared by the benches, tools, and tests:
// attach the paper's background workload mixes (Sec. 7.3) to a built
// Scenario. Hoisted out of bench/bench_util.h so every scenario consumer
// (fig benches, obsctl, the fuzzer) builds its VM population through one
// public harness API instead of private copies.
#ifndef SRC_HARNESS_WORKLOADS_H_
#define SRC_HARNESS_WORKLOADS_H_

#include <memory>
#include <vector>

#include "src/harness/scenario.h"
#include "src/workloads/guest.h"
#include "src/workloads/stress.h"

namespace tableau {

enum class Background { kNone, kIo, kIoHeavy, kCpu };

inline const char* BackgroundName(Background bg) {
  switch (bg) {
    case Background::kNone:
      return "none";
    case Background::kIo:
      return "I/O";
    case Background::kIoHeavy:
      return "I/O";
    case Background::kCpu:
      return "CPU";
  }
  return "?";
}

// Attaches the selected background workload to vCPUs [first, end).
struct BackgroundWorkloads {
  std::vector<std::unique_ptr<StressIoWorkload>> io;
  std::vector<std::unique_ptr<CpuHogWorkload>> cpu;
};

inline void AttachBackground(Scenario& scenario, Background kind, std::size_t first,
                             BackgroundWorkloads& out) {
  for (std::size_t i = first; i < scenario.vcpus.size(); ++i) {
    switch (kind) {
      case Background::kNone:
        break;
      case Background::kIo:
      case Background::kIoHeavy: {
        StressIoWorkload::Config config;
        if (kind == Background::kIoHeavy) {
          config = StressIoWorkload::Config::Heavy();
        }
        config.seed = i + 1;
        out.io.push_back(std::make_unique<StressIoWorkload>(scenario.machine,
                                                            scenario.vcpus[i], config));
        out.io.back()->Start(0);
        break;
      }
      case Background::kCpu:
        out.cpu.push_back(
            std::make_unique<CpuHogWorkload>(scenario.machine, scenario.vcpus[i]));
        out.cpu.back()->Start(0);
        break;
    }
  }
}

// The Fig. 6-style idle-VM population: every VM "still requires CPU time
// occasionally for system processes", so each vCPU in [first, end) gets a
// work-queue guest plus a SystemNoiseWorkload (seeded by vCPU index for
// determinism), optionally with the I/O-intensive stress mix on top.
struct VmNoiseWorkloads {
  std::vector<std::unique_ptr<WorkQueueGuest>> guests;
  std::vector<std::unique_ptr<SystemNoiseWorkload>> noises;
  std::vector<std::unique_ptr<StressIoWorkload>> io;
};

inline void AttachVmNoise(Scenario& scenario, std::size_t first,
                          SystemNoiseWorkload::Config noise_config, bool with_io,
                          VmNoiseWorkloads& out) {
  for (std::size_t i = first; i < scenario.vcpus.size(); ++i) {
    out.guests.push_back(
        std::make_unique<WorkQueueGuest>(scenario.machine, scenario.vcpus[i]));
    noise_config.seed = i + 1;
    out.noises.push_back(std::make_unique<SystemNoiseWorkload>(
        scenario.machine, out.guests.back().get(), noise_config));
    out.noises.back()->Start(0);
    if (with_io) {
      StressIoWorkload::Config stress_config;
      stress_config.seed = i + 1;
      out.io.push_back(std::make_unique<StressIoWorkload>(
          scenario.machine, out.guests.back().get(), stress_config));
      out.io.back()->Start(0);
    }
  }
}

}  // namespace tableau

#endif  // SRC_HARNESS_WORKLOADS_H_
