#include "src/harness/scenario.h"

#include "src/common/check.h"
#include "src/core/coschedule.h"
#include "src/obs/telemetry.h"

namespace tableau {
namespace {

// Initial table planning for a Tableau scenario via the single Solve entry
// point. Injected planner failures (when the scenario's fault plan carries
// them) are retried a bounded number of times: the initial table must exist
// for the scenario to run at all; runtime replans are where injected
// failures exercise the keep-previous-table policy.
PlanResult SolveInitialPlan(const Planner& planner, std::vector<VcpuRequest> requests) {
  PlanRequest request;
  request.requests = std::move(requests);
  PlanResult plan = planner.Solve(request);
  for (int attempt = 0;
       !plan.success && plan.failure == PlanFailure::kInjected && attempt < 16;
       ++attempt) {
    plan = planner.Solve(request);
  }
  TABLEAU_CHECK_MSG(plan.success, "planner failed: %s", plan.error.c_str());
  return plan;
}

// The harness' planner view of the scenario. Deliberately leaves
// cores_per_socket at its flat default: the paper's evaluation plans the
// box as a flat core set (NUMA-affine placement is the fleet hosts'
// opt-in), and the golden traces pin the flat layout.
PlannerConfig ScenarioPlannerConfig(const ScenarioConfig& config,
                                    const Scenario& scenario) {
  PlannerConfig planner_config;
  planner_config.num_cpus = config.guest_cpus;
  planner_config.metrics = &scenario.machine->metrics();
  planner_config.fault_injector = scenario.injector;
  planner_config.max_latency_degradations = config.max_latency_degradations;
  return planner_config;
}

}  // namespace

fleet::HostConfig HostConfigFrom(const ScenarioConfig& config) {
  fleet::HostConfig host;
  host.num_cpus = config.guest_cpus;
  host.cores_per_socket = config.cores_per_socket;
  host.slots_per_core = 0;  // The harness adds its own vCPU grid.
  host.scheduler = config.scheduler;
  host.capped = config.capped;
  host.credit_timeslice = config.credit_timeslice;
  host.switch_slip_tolerance = config.switch_slip_tolerance;
  host.max_latency_degradations = config.max_latency_degradations;
  host.costs = config.costs;
  host.fault_plan = config.fault_plan;
  host.attach_telemetry = false;
  return host;
}

Scenario BuildScenario(const ScenarioConfig& config) {
  Scenario scenario;
  // A one-host serial cluster: shard 0 is a plain dedicated engine, so the
  // machine behaves exactly as with an owned engine (golden traces pin it).
  fleet::ClusterConfig cluster_config;
  cluster_config.num_hosts = 1;
  cluster_config.host = HostConfigFrom(config);
  scenario.cluster = std::make_unique<fleet::Cluster>(cluster_config);
  scenario.host = &scenario.cluster->host(0);
  scenario.machine = &scenario.host->machine();
  scenario.tableau = scenario.host->tableau();
  scenario.injector = scenario.host->fault_injector();
  TableauScheduler* tableau = scenario.tableau;

  const int num_vms = config.guest_cpus * config.vms_per_core;
  for (int i = 0; i < num_vms; ++i) {
    VcpuParams params;
    params.weight = 256;
    params.cap = config.capped ? config.utilization : 0.0;
    params.utilization = config.utilization;
    params.latency_goal = config.latency_goal;
    params.name = "vm" + std::to_string(i);
    scenario.vcpus.push_back(scenario.machine->AddVcpu(params));
    scenario.vm_of.push_back(i);
  }
  scenario.vantage = scenario.vcpus.empty() ? nullptr : scenario.vcpus.front();

  if (tableau != nullptr && num_vms > 0) {
    const Planner planner(ScenarioPlannerConfig(config, scenario));
    std::vector<VcpuRequest> requests;
    for (const Vcpu* vcpu : scenario.vcpus) {
      VcpuRequest request;
      request.vcpu = vcpu->id();
      request.utilization = config.utilization;
      request.latency_goal = config.latency_goal;
      requests.push_back(request);
    }
    scenario.plan = SolveInitialPlan(planner, std::move(requests));
    tableau->PushTable(std::make_shared<SchedulingTable>(scenario.plan.table));
  }
  return scenario;
}

void AttachTelemetry(Scenario& scenario, obs::Telemetry* telemetry) {
  TABLEAU_CHECK(scenario.machine != nullptr && telemetry != nullptr);
  for (const Vcpu* vcpu : scenario.vcpus) {
    telemetry->SetVcpuName(vcpu->id(), vcpu->params().name);
  }
  telemetry->SetVmOf(scenario.vm_of);
  scenario.machine->AttachTelemetry(telemetry);
}

Scenario BuildVmScenario(const ScenarioConfig& config, const std::vector<VmSpec>& vms) {
  // Build the machine and scheduler via the single-vCPU path with zero VMs;
  // the table is planned and pushed below, once.
  ScenarioConfig empty = config;
  empty.vms_per_core = 0;
  Scenario scenario = BuildScenario(empty);

  std::vector<VcpuRequest> requests;
  std::vector<CoscheduleHint> hints;
  int vm_index = 0;
  for (const VmSpec& vm : vms) {
    TABLEAU_CHECK(vm.vcpus >= 1);
    std::vector<VcpuId> members;
    for (int i = 0; i < vm.vcpus; ++i) {
      VcpuParams params;
      params.weight = 256;
      params.cap = config.capped ? vm.utilization_each : 0.0;
      params.utilization = vm.utilization_each;
      params.latency_goal = vm.latency_goal;
      params.name = "vm" + std::to_string(vm_index) + "." + std::to_string(i);
      Vcpu* vcpu = scenario.machine->AddVcpu(params);
      scenario.vcpus.push_back(vcpu);
      scenario.vm_of.push_back(vm_index);
      members.push_back(vcpu->id());
      requests.push_back(
          VcpuRequest{vcpu->id(), vm.utilization_each, vm.latency_goal});
    }
    if (vm.gang) {
      for (std::size_t i = 1; i < members.size(); ++i) {
        hints.push_back(
            CoscheduleHint{members[0], members[i], CoschedulePreference::kPrefer});
      }
    }
    ++vm_index;
  }
  scenario.vantage = scenario.vcpus.empty() ? nullptr : scenario.vcpus.front();

  if (scenario.tableau != nullptr) {
    const Planner planner(ScenarioPlannerConfig(config, scenario));
    scenario.plan = SolveInitialPlan(planner, std::move(requests));
    if (!hints.empty() && scenario.plan.method == PlanMethod::kPartitioned) {
      std::vector<std::vector<Allocation>> per_core(
          static_cast<std::size_t>(config.guest_cpus));
      for (int c = 0; c < config.guest_cpus; ++c) {
        per_core[static_cast<std::size_t>(c)] =
            scenario.plan.table.cpu(c).allocations;
      }
      CoschedulePass(per_core, scenario.plan.core_tasks, hints,
                     scenario.plan.table.length());
      scenario.plan.table =
          SchedulingTable::Build(scenario.plan.table.length(), std::move(per_core));
      TABLEAU_CHECK(scenario.plan.table.Validate().empty());
    }
    scenario.tableau->PushTable(
        std::make_shared<SchedulingTable>(scenario.plan.table));
  }
  return scenario;
}

}  // namespace tableau
