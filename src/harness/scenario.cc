#include "src/harness/scenario.h"

#include "src/common/check.h"
#include "src/schedulers/credit.h"
#include "src/schedulers/credit2.h"
#include "src/core/coschedule.h"
#include "src/schedulers/cfs.h"
#include "src/schedulers/rtds.h"

namespace tableau {

const char* SchedKindName(SchedKind kind) {
  switch (kind) {
    case SchedKind::kCredit:
      return "Credit";
    case SchedKind::kCredit2:
      return "Credit2";
    case SchedKind::kRtds:
      return "RTDS";
    case SchedKind::kTableau:
      return "Tableau";
    case SchedKind::kCfs:
      return "CFS";
  }
  return "?";
}

Scenario BuildScenario(const ScenarioConfig& config) {
  Scenario scenario;

  std::unique_ptr<VcpuScheduler> scheduler;
  TableauScheduler* tableau = nullptr;
  switch (config.scheduler) {
    case SchedKind::kCredit: {
      CreditScheduler::Options options;
      options.timeslice = config.credit_timeslice;
      scheduler = std::make_unique<CreditScheduler>(options);
      break;
    }
    case SchedKind::kCredit2: {
      TABLEAU_CHECK_MSG(!config.capped, "Credit2 does not support caps (Sec. 7.2)");
      scheduler = std::make_unique<Credit2Scheduler>(Credit2Scheduler::Options{});
      break;
    }
    case SchedKind::kRtds: {
      TABLEAU_CHECK_MSG(config.capped, "RTDS reservations are inherently capped");
      scheduler = std::make_unique<RtdsScheduler>();
      break;
    }
    case SchedKind::kCfs: {
      scheduler = std::make_unique<CfsScheduler>(CfsScheduler::Options{});
      break;
    }
    case SchedKind::kTableau: {
      TableauDispatcher::Config dispatcher;
      dispatcher.work_conserving = !config.capped;
      auto owned = std::make_unique<TableauScheduler>(dispatcher);
      tableau = owned.get();
      scheduler = std::move(owned);
      break;
    }
  }

  MachineConfig machine_config;
  machine_config.num_cpus = config.guest_cpus;
  machine_config.cores_per_socket = config.cores_per_socket;
  machine_config.costs = config.costs;
  scenario.machine = std::make_unique<Machine>(machine_config, std::move(scheduler));
  scenario.tableau = tableau;

  const int num_vms = config.guest_cpus * config.vms_per_core;
  for (int i = 0; i < num_vms; ++i) {
    VcpuParams params;
    params.weight = 256;
    params.cap = config.capped ? config.utilization : 0.0;
    params.utilization = config.utilization;
    params.latency_goal = config.latency_goal;
    params.name = "vm" + std::to_string(i);
    scenario.vcpus.push_back(scenario.machine->AddVcpu(params));
    scenario.vm_of.push_back(i);
  }
  scenario.vantage = scenario.vcpus.empty() ? nullptr : scenario.vcpus.front();

  if (tableau != nullptr && num_vms > 0) {
    PlannerConfig planner_config;
    planner_config.num_cpus = config.guest_cpus;
    planner_config.metrics = &scenario.machine->metrics();
    const Planner planner(planner_config);
    std::vector<VcpuRequest> requests;
    for (const Vcpu* vcpu : scenario.vcpus) {
      VcpuRequest request;
      request.vcpu = vcpu->id();
      request.utilization = config.utilization;
      request.latency_goal = config.latency_goal;
      requests.push_back(request);
    }
    scenario.plan = planner.Plan(requests);
    TABLEAU_CHECK_MSG(scenario.plan.success, "planner failed: %s",
                      scenario.plan.error.c_str());
    tableau->PushTable(std::make_shared<SchedulingTable>(scenario.plan.table));
  }
  return scenario;
}

Scenario BuildVmScenario(const ScenarioConfig& config, const std::vector<VmSpec>& vms) {
  // Build the machine and scheduler via the single-vCPU path with zero VMs;
  // the table is planned and pushed below, once.
  ScenarioConfig empty = config;
  empty.vms_per_core = 0;
  Scenario scenario = BuildScenario(empty);

  std::vector<VcpuRequest> requests;
  std::vector<CoscheduleHint> hints;
  int vm_index = 0;
  for (const VmSpec& vm : vms) {
    TABLEAU_CHECK(vm.vcpus >= 1);
    std::vector<VcpuId> members;
    for (int i = 0; i < vm.vcpus; ++i) {
      VcpuParams params;
      params.weight = 256;
      params.cap = config.capped ? vm.utilization_each : 0.0;
      params.utilization = vm.utilization_each;
      params.latency_goal = vm.latency_goal;
      params.name = "vm" + std::to_string(vm_index) + "." + std::to_string(i);
      Vcpu* vcpu = scenario.machine->AddVcpu(params);
      scenario.vcpus.push_back(vcpu);
      scenario.vm_of.push_back(vm_index);
      members.push_back(vcpu->id());
      requests.push_back(
          VcpuRequest{vcpu->id(), vm.utilization_each, vm.latency_goal});
    }
    if (vm.gang) {
      for (std::size_t i = 1; i < members.size(); ++i) {
        hints.push_back(
            CoscheduleHint{members[0], members[i], CoschedulePreference::kPrefer});
      }
    }
    ++vm_index;
  }
  scenario.vantage = scenario.vcpus.empty() ? nullptr : scenario.vcpus.front();

  if (scenario.tableau != nullptr) {
    PlannerConfig planner_config;
    planner_config.num_cpus = config.guest_cpus;
    planner_config.metrics = &scenario.machine->metrics();
    const Planner planner(planner_config);
    scenario.plan = planner.Plan(requests);
    TABLEAU_CHECK_MSG(scenario.plan.success, "planner failed: %s",
                      scenario.plan.error.c_str());
    if (!hints.empty() && scenario.plan.method == PlanMethod::kPartitioned) {
      std::vector<std::vector<Allocation>> per_core(
          static_cast<std::size_t>(config.guest_cpus));
      for (int c = 0; c < config.guest_cpus; ++c) {
        per_core[static_cast<std::size_t>(c)] =
            scenario.plan.table.cpu(c).allocations;
      }
      CoschedulePass(per_core, scenario.plan.core_tasks, hints,
                     scenario.plan.table.length());
      scenario.plan.table =
          SchedulingTable::Build(scenario.plan.table.length(), std::move(per_core));
      TABLEAU_CHECK(scenario.plan.table.Validate().empty());
    }
    scenario.tableau->PushTable(
        std::make_shared<SchedulingTable>(scenario.plan.table));
  }
  return scenario;
}

}  // namespace tableau
