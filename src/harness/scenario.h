// Experiment harness: builds the paper's evaluation scenarios (Sec. 7.2
// "Scheduler setup") — a machine with N guest cores (dom0's cores are not
// simulated; they serve no guest work), four single-vCPU VMs per core, one
// of the four schedulers, and the paper's parameters:
//  - Credit with a 5 ms timeslice (documented best practice for I/O);
//  - Tableau with a 20 ms maximum scheduling latency, "to allow for a
//    reasonably fair comparison with Credit" (the planner then picks a
//    period of roughly 13 ms with a budget of about 3.2 ms);
//  - RTDS configured to match Tableau's parameters;
//  - a capped variant (25% caps; Credit/RTDS/Tableau) and an uncapped one
//    (Credit/Credit2/Tableau with the second-level scheduler).
#ifndef SRC_HARNESS_SCENARIO_H_
#define SRC_HARNESS_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/planner.h"
#include "src/faults/fault_plan.h"
#include "src/fleet/cluster.h"
#include "src/hypervisor/machine.h"
#include "src/schedulers/factory.h"
#include "src/schedulers/tableau_scheduler.h"

namespace tableau {

struct ScenarioConfig {
  SchedKind scheduler = SchedKind::kTableau;
  // Guest cores (the paper's 16-core box gives 12 to guests, the 48-core
  // box gives 44).
  int guest_cpus = 12;
  int cores_per_socket = 6;
  int vms_per_core = 4;
  bool capped = false;
  // Per-VM reservation (fair share of 4 VMs/core and the paper's 20 ms
  // latency goal).
  double utilization = 0.25;
  TimeNs latency_goal = 20 * kMillisecond;
  TimeNs credit_timeslice = 5 * kMillisecond;
  OverheadCosts costs;
  // Deterministic fault injection. Empty (the default) builds no injector:
  // the scenario is byte-identical to the fault-free engine.
  faults::FaultPlan fault_plan;
  // Tableau degradation: re-arm a table switch that misses its deadline by
  // more than this at the next wrap (kTimeNever = promote late, the
  // golden-preserving default).
  TimeNs switch_slip_tolerance = kTimeNever;
  // Planner degradation: stepwise latency-goal relaxation on admission
  // rejection (0 = off).
  int max_latency_degradations = 0;
};

// A single-host experiment, expressed as a one-host fleet::Cluster
// (api_redesign: the fleet Host/Cluster API is the only way to build a
// simulated box; the classic harness is the size-1 special case). The
// cluster owns the host, which owns the fault injector, scheduler, and
// machine; `host`, `machine`, `tableau`, and `injector` are non-owning
// views into it that stay valid as the Scenario moves.
struct Scenario {
  std::unique_ptr<fleet::Cluster> cluster;
  fleet::Host* host = nullptr;
  Machine* machine = nullptr;
  // Owned by the machine; null unless scheduler == kTableau.
  TableauScheduler* tableau = nullptr;
  // Fault injector driving machine + planner hooks; null when fault_plan
  // is empty.
  faults::FaultInjector* injector = nullptr;
  std::vector<Vcpu*> vcpus;
  // vCPU 0, used as the measurement vantage point.
  Vcpu* vantage = nullptr;
  PlanResult plan;  // Valid for Tableau scenarios.
  // Grouping of vCPUs into VMs ("each VM comprises one or more vCPUs",
  // Sec. 2). vm_of[vcpu id] = VM index. Single-vCPU VMs in BuildScenario.
  std::vector<int> vm_of;
};

// Maps a single-host scenario config onto the fleet host configuration the
// harness builds its cluster from: no slot pool (the harness adds vCPUs
// itself) and no host-owned telemetry (AttachTelemetry wires an external
// instance). Shared with tools that want a fleet host shaped like the
// classic experiment box.
fleet::HostConfig HostConfigFrom(const ScenarioConfig& config);

// Builds the machine, vCPUs, and (for Tableau) the scheduling table.
Scenario BuildScenario(const ScenarioConfig& config);

// A multi-vCPU VM description for BuildVmScenario.
struct VmSpec {
  int vcpus = 1;
  double utilization_each = 0.25;
  TimeNs latency_goal = 20 * kMillisecond;
  // For Tableau: emit a kPrefer co-scheduling hint between the VM's vCPUs
  // (gang alignment, Sec. 5 post-processing).
  bool gang = false;
};

// Builds a scenario from explicit (possibly multi-vCPU) VM descriptions.
// Under Tableau, each vCPU is an independent reservation — exactly the
// paper's model — and gang VMs additionally get their slots aligned by the
// co-scheduling pass when possible.
Scenario BuildVmScenario(const ScenarioConfig& config, const std::vector<VmSpec>& vms);

// Wires a telemetry instance into a built scenario: copies the scenario's
// vCPU names and VM grouping into the telemetry (so exported series and SLO
// verdicts use "vm3"-style names) and attaches it to the machine. Call
// before the machine starts; `telemetry` must outlive the machine. The
// telemetry is a pure observer — attaching it does not change the schedule.
void AttachTelemetry(Scenario& scenario, obs::Telemetry* telemetry);

}  // namespace tableau

#endif  // SRC_HARNESS_SCENARIO_H_
