// Virtual NIC model (the SR-IOV virtual function each VM gets in Sec. 7.4).
//
// The guest enqueues response bytes into a finite ring buffer; the NIC
// drains the ring at line rate even while the guest is descheduled, and the
// guest must wait for ring space to send more. This reproduces the paper's
// Sec. 7.5 observation: under a rigid table, a VM serving large (1 MiB)
// responses fills the ring, gets preempted for a long slot gap, the NIC
// drains and then idles — so I/O device utilization (and hence large-file
// throughput) suffers compared to schedulers that spread execution out.
//
// The ring is modelled lazily by its transmit-completion horizon, so no
// per-packet events are needed.
#ifndef SRC_NET_VIRTUAL_NIC_H_
#define SRC_NET_VIRTUAL_NIC_H_

#include <cstdint>

#include "src/common/check.h"
#include "src/common/time.h"

namespace tableau {

class VirtualNic {
 public:
  struct Config {
    // Per-VF drain rate. 10 Gbit/s = 1.25 bytes/ns.
    double bandwidth_bits_per_sec = 10e9;
    // Ring capacity in bytes (payload queued but not yet on the wire).
    std::int64_t ring_bytes = 256 * 1024;
  };

  explicit VirtualNic(Config config) : config_(config) {
    TABLEAU_CHECK(config_.bandwidth_bits_per_sec > 0 && config_.ring_bytes > 0);
    // ns per byte = 8 bits / (bits per ns).
    ns_per_byte_ = 8.0 * 1e9 / config_.bandwidth_bits_per_sec;
  }

  // Bytes currently queued (enqueued but not yet transmitted) at `now`.
  std::int64_t QueuedBytes(TimeNs now) const {
    if (tx_done_at_ <= now) {
      return 0;
    }
    return static_cast<std::int64_t>(static_cast<double>(tx_done_at_ - now) / ns_per_byte_);
  }

  std::int64_t FreeSpace(TimeNs now) const { return config_.ring_bytes - QueuedBytes(now); }

  // Enqueues up to `bytes`; returns the number accepted (limited by free
  // ring space).
  std::int64_t Enqueue(TimeNs now, std::int64_t bytes) {
    const std::int64_t accepted = bytes < FreeSpace(now) ? bytes : FreeSpace(now);
    if (accepted <= 0) {
      return 0;
    }
    const TimeNs start = tx_done_at_ > now ? tx_done_at_ : now;
    tx_done_at_ = start + static_cast<TimeNs>(static_cast<double>(accepted) * ns_per_byte_);
    total_bytes_ += accepted;
    return accepted;
  }

  // Absolute time at which at least `bytes` of ring space will be free
  // (assuming no further enqueues). `bytes` must be <= ring capacity.
  TimeNs TimeWhenFree(TimeNs now, std::int64_t bytes) const {
    TABLEAU_CHECK(bytes <= config_.ring_bytes);
    const TimeNs needed_horizon = static_cast<TimeNs>(
        static_cast<double>(config_.ring_bytes - bytes) * ns_per_byte_);
    const TimeNs when = tx_done_at_ - needed_horizon;
    return when > now ? when : now;
  }

  // Absolute time at which everything currently queued is on the wire.
  TimeNs DrainCompleteTime(TimeNs now) const { return tx_done_at_ > now ? tx_done_at_ : now; }

  std::int64_t total_bytes_transmitted() const { return total_bytes_; }

 private:
  Config config_;
  double ns_per_byte_ = 0.8;
  TimeNs tx_done_at_ = 0;
  std::int64_t total_bytes_ = 0;
};

}  // namespace tableau

#endif  // SRC_NET_VIRTUAL_NIC_H_
