#include "src/common/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace tableau {

namespace {

std::int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Worker identity for nested-call accounting: which pool (if any) owns the
// current thread, and its execution slot there. Plain thread_local (not a
// member) so non-worker threads cost nothing.
struct ThreadSlot {
  const void* pool = nullptr;
  int slot = 0;
};
thread_local ThreadSlot t_slot;

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)),
      slot_indices_(static_cast<std::size_t>(num_threads_)),
      slot_busy_ns_(static_cast<std::size_t>(num_threads_)) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int t = 0; t < num_threads_ - 1; ++t) {
    workers_.emplace_back([this, t] { WorkerLoop(t + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

int ThreadPool::CurrentSlot() const {
  return t_slot.pool == this ? t_slot.slot : 0;
}

void ThreadPool::RunJob(Job& job, int slot) {
  const auto s = static_cast<std::size_t>(slot);
  for (;;) {
    const std::size_t g = job.next_grain.fetch_add(1, std::memory_order_relaxed);
    if (g >= job.num_grains) {
      return;
    }
    const std::size_t begin = g * job.grain;
    const std::size_t end = std::min(begin + job.grain, job.n);
    const std::size_t count = end - begin;
    const std::int64_t start = MonotonicNowNs();
    for (std::size_t i = begin; i < end; ++i) {
      (*job.fn)(i);
    }
    slot_busy_ns_[s].fetch_add(MonotonicNowNs() - start, std::memory_order_relaxed);
    slot_indices_[s].fetch_add(count, std::memory_order_relaxed);
    if (job.done.fetch_add(count, std::memory_order_acq_rel) + count == job.n) {
      // Lock-then-notify pairs with the caller's predicate re-check, so the
      // final wakeup cannot be lost between its check and its wait.
      std::lock_guard<std::mutex> lock(job.mu);
      job.cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop(int slot) {
  t_slot.pool = this;
  t_slot.slot = slot;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !jobs_.empty(); });
      if (shutdown_) {
        return;  // Callers block until their jobs finish, so none are live.
      }
      job = jobs_.front();
      if (job->next_grain.load(std::memory_order_relaxed) >= job->num_grains) {
        // Fully claimed: retire it so later jobs become visible.
        jobs_.pop_front();
        continue;
      }
    }
    RunJob(*job, slot);
  }
}

void ThreadPool::ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                             std::size_t grain) {
  if (n == 0) {
    return;
  }
  if (grain == 0) {
    // Coarse default: ~4 grains per executor amortizes claim/accounting
    // costs while leaving enough grains for stealing to balance load.
    grain = std::max<std::size_t>(
        1, (n + static_cast<std::size_t>(num_threads_) * 4 - 1) /
               (static_cast<std::size_t>(num_threads_) * 4));
  }
  const std::size_t num_grains = (n + grain - 1) / grain;
  const int slot = CurrentSlot();
  if (num_threads_ <= 1 || num_grains == 1) {
    // Single grain: run inline with no queue, lock, or wakeup. Billed to the
    // caller's own slot, so nested calls from a worker attribute correctly.
    const auto s = static_cast<std::size_t>(slot);
    const std::int64_t start = MonotonicNowNs();
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    slot_busy_ns_[s].fetch_add(MonotonicNowNs() - start, std::memory_order_relaxed);
    slot_indices_[s].fetch_add(n, std::memory_order_relaxed);
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->grain = grain;
  job->num_grains = num_grains;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(job);
  }
  // The caller immediately claims one grain itself, so at most num_grains - 1
  // are available for workers: wake exactly that many (saturated at the
  // worker count). A two-grain loop wakes one worker, not the whole pool.
  const std::size_t idle_capacity = workers_.size();
  const std::size_t wakeups = std::min(idle_capacity, num_grains - 1);
  if (wakeups >= idle_capacity) {
    work_cv_.notify_all();
  } else {
    for (std::size_t w = 0; w < wakeups; ++w) {
      work_cv_.notify_one();
    }
  }

  // The caller is an executor too: the loop always completes even if every
  // worker is busy with other jobs.
  RunJob(*job, slot);
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->cv.wait(lock, [&] { return job->done.load(std::memory_order_acquire) == n; });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = std::find(jobs_.begin(), jobs_.end(), job);
    if (it != jobs_.end()) {
      jobs_.erase(it);
    }
  }
}

ThreadPool::Stats ThreadPool::GetStats() const {
  Stats stats;
  stats.indices.reserve(slot_indices_.size());
  stats.busy_ns.reserve(slot_busy_ns_.size());
  for (const auto& v : slot_indices_) {
    stats.indices.push_back(v.load(std::memory_order_relaxed));
  }
  for (const auto& v : slot_busy_ns_) {
    stats.busy_ns.push_back(v.load(std::memory_order_relaxed));
  }
  return stats;
}

void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn, std::size_t grain) {
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  pool->ParallelFor(n, fn, grain);
}

}  // namespace tableau
