#include "src/common/math_util.h"

#include <algorithm>

namespace tableau {

std::vector<std::int64_t> DivisorsOf(std::int64_t n) {
  TABLEAU_CHECK(n > 0);
  std::vector<std::int64_t> small;
  std::vector<std::int64_t> large;
  for (std::int64_t d = 1; d <= n / d; ++d) {
    if (n % d == 0) {
      small.push_back(d);
      if (d != n / d) {
        large.push_back(n / d);
      }
    }
  }
  small.insert(small.end(), large.rbegin(), large.rend());
  return small;
}

std::vector<std::int64_t> DivisorsAtLeast(std::int64_t n, std::int64_t floor) {
  std::vector<std::int64_t> all = DivisorsOf(n);
  std::vector<std::int64_t> result;
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    if (*it >= floor) {
      result.push_back(*it);
    }
  }
  return result;
}

}  // namespace tableau
