// Invariant-checking macros.
//
// TABLEAU_CHECK is always on (release and debug): a failed check indicates a
// broken internal invariant (e.g. an inconsistent scheduling table), and we
// prefer a crash with context over silently corrupting a schedule.
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define TABLEAU_CHECK(cond)                                                           \
  do {                                                                                \
    if (!(cond)) {                                                                    \
      std::fprintf(stderr, "TABLEAU_CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, \
                   #cond);                                                            \
      std::abort();                                                                   \
    }                                                                                 \
  } while (0)

#define TABLEAU_CHECK_MSG(cond, ...)                                                  \
  do {                                                                                \
    if (!(cond)) {                                                                    \
      std::fprintf(stderr, "TABLEAU_CHECK failed at %s:%d: %s\n  ", __FILE__,         \
                   __LINE__, #cond);                                                  \
      std::fprintf(stderr, __VA_ARGS__);                                              \
      std::fprintf(stderr, "\n");                                                     \
      std::abort();                                                                   \
    }                                                                                 \
  } while (0)

#endif  // SRC_COMMON_CHECK_H_
