#include "src/common/rng.h"

#include <cmath>

namespace tableau {

double Rng::Exponential(double mean) {
  TABLEAU_CHECK(mean > 0);
  double u = UniformDouble();
  if (u <= 0.0) {
    u = 1e-18;  // Avoid log(0).
  }
  return -mean * std::log(u);
}

}  // namespace tableau
