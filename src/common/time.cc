#include "src/common/time.h"

#include <cstdio>

namespace tableau {

std::string FormatDuration(TimeNs t) {
  char buf[64];
  if (t == kTimeNever) {
    return "never";
  }
  const bool neg = t < 0;
  const TimeNs a = neg ? -t : t;
  if (a >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3fs", neg ? "-" : "", ToSec(a));
  } else if (a >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3fms", neg ? "-" : "", ToMs(a));
  } else if (a >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%s%.3fus", neg ? "-" : "", ToUs(a));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%lldns", neg ? "-" : "", static_cast<long long>(a));
  }
  return buf;
}

}  // namespace tableau
