// Small integer-math helpers used by the planner: gcd/lcm with overflow
// saturation, divisor enumeration for hyperperiod selection, and ceiling
// division for budget computation.
#ifndef SRC_COMMON_MATH_UTIL_H_
#define SRC_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"

namespace tableau {

// Greatest common divisor; Gcd(0, 0) == 0.
constexpr std::int64_t Gcd(std::int64_t a, std::int64_t b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

// Least common multiple, saturating at INT64_MAX on overflow.
constexpr std::int64_t LcmSaturating(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) return 0;
  const std::int64_t g = Gcd(a, b);
  const std::int64_t a_red = a / g;
  // Check a_red * b for overflow.
  if (a_red > INT64_MAX / b) return INT64_MAX;
  return a_red * b;
}

// Ceiling division for non-negative operands.
constexpr std::int64_t CeilDiv(std::int64_t num, std::int64_t den) {
  return (num + den - 1) / den;
}

// Rounds `value` up to the next multiple of `step` (step > 0).
constexpr std::int64_t RoundUp(std::int64_t value, std::int64_t step) {
  return CeilDiv(value, step) * step;
}

// Rounds `value` down to a multiple of `step` (step > 0).
constexpr std::int64_t RoundDown(std::int64_t value, std::int64_t step) {
  return (value / step) * step;
}

// Saturating addition for non-negative operands: a + b, capped at INT64_MAX.
// Demand-bound accumulations use this so that pathological task sets (huge
// hyperperiods x many tasks) saturate instead of wrapping negative — a
// wrapped demand would make an over-loaded set look trivially schedulable.
constexpr std::int64_t SatAdd(std::int64_t a, std::int64_t b) {
  return a > INT64_MAX - b ? INT64_MAX : a + b;
}

// Saturating multiplication for non-negative operands: a * b, capped at
// INT64_MAX.
constexpr std::int64_t SatMul(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) return 0;
  return a > INT64_MAX / b ? INT64_MAX : a * b;
}

// Computes floor(a * b / c) without intermediate overflow, for a, b, c >= 0.
// Used for exact fluid-schedule accounting in the DP-Fair cluster scheduler.
inline std::int64_t MulDivFloor(std::int64_t a, std::int64_t b, std::int64_t c) {
  TABLEAU_CHECK(a >= 0 && b >= 0 && c > 0);
  const __int128 p = static_cast<__int128>(a) * b;
  return static_cast<std::int64_t>(p / c);
}

// All positive divisors of n, in ascending order.
std::vector<std::int64_t> DivisorsOf(std::int64_t n);

// All divisors of n that are >= floor, in descending order. This is the
// candidate-period set "F" from the paper (Sec. 5, "Bounding table lengths").
std::vector<std::int64_t> DivisorsAtLeast(std::int64_t n, std::int64_t floor);

}  // namespace tableau

#endif  // SRC_COMMON_MATH_UTIL_H_
