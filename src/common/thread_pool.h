// A small fixed-size worker pool with a blocking data-parallel primitive,
// used by the planner to parallelize table generation (the control-plane
// critical path: Tableau replans on every VM arrival/departure).
//
// Design constraints, in order:
//   1. Determinism: ParallelFor indexes work by position, so callers that
//      write results into per-index slots get output independent of thread
//      interleaving. All planner uses follow this pattern, which is what
//      makes the parallel plan byte-identical to the serial one.
//   2. No deadlocks: the calling thread participates in the loop it issued,
//      so every ParallelFor completes even if no worker ever picks it up
//      (e.g. a pool constructed with 1 thread spawns no workers at all).
//   3. Concurrent callers: several threads may issue ParallelFor on the same
//      pool simultaneously (PlanCache::GetOrPlan is thread-safe and shares
//      one planner); jobs are queued and drained cooperatively.
//   4. Cheap hand-off: indices are claimed in contiguous grains (not one by
//      one) and submitting a job wakes only as many workers as there are
//      grains left after the caller takes one — a loop with fewer grains
//      than workers never pays a full notify_all broadcast, and a
//      single-grain loop runs inline with no locking at all.
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tableau {

class ThreadPool {
 public:
  // Spawns num_threads - 1 workers: the thread calling ParallelFor is the
  // remaining executor. num_threads <= 1 yields a pool that runs everything
  // inline in the caller.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(i) exactly once for every i in [0, n), distributing indices over
  // the workers and the calling thread, and returns when all n calls have
  // finished. fn must be safe to invoke concurrently for distinct indices
  // and must not throw (invariant violations abort via TABLEAU_CHECK, same
  // as on the serial path).
  //
  // Indices are handed out in contiguous grains of `grain` indices each;
  // grain == 0 picks a coarse default (~4 grains per thread) that amortizes
  // claim and accounting costs for homogeneous loops. Pass grain == 1 when
  // the per-index work is heavy and heterogeneous (per-index stealing load
  // balance). The grain never affects the result, only scheduling.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                   std::size_t grain = 0);

  // Execution slot of the calling thread for this pool: workers return their
  // slot in [1, num_threads), every other thread 0. Nested ParallelFor calls
  // issued from a worker bill their inline work to that worker's slot.
  int CurrentSlot() const;

  // Cumulative per-execution-slot accounting: slot 0 is every non-worker
  // thread that called ParallelFor, slots 1..num_threads-1 are the pool
  // workers. `indices` counts loop indices executed by the slot, `busy_ns`
  // wall time spent inside fn (measured once per grain, not per index).
  // Observability only — reading races benignly with running jobs.
  struct Stats {
    std::vector<std::uint64_t> indices;
    std::vector<std::int64_t> busy_ns;
  };
  Stats GetStats() const;

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t grain = 1;
    std::size_t num_grains = 0;
    std::atomic<std::size_t> next_grain{0};
    std::atomic<std::size_t> done{0};  // Completed indices; finished at n.
    std::mutex mu;
    std::condition_variable cv;  // Signaled when done reaches n.
  };

  // Claims and runs whole grains of `job` until none remain, billing work to
  // `slot` (0 = a non-worker calling thread, 1.. = pool worker).
  void RunJob(Job& job, int slot);
  void WorkerLoop(int slot);

  const int num_threads_;
  // Indexed by execution slot; see Stats.
  std::vector<std::atomic<std::uint64_t>> slot_indices_;
  std::vector<std::atomic<std::int64_t>> slot_busy_ns_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool shutdown_ = false;
};

// Serial fallback helper: runs fn(i) for i in [0, n) inline when pool is
// null (or trivially sized), otherwise delegates to the pool. Lets call
// sites stay agnostic of whether parallelism is configured.
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn, std::size_t grain = 0);

}  // namespace tableau

#endif  // SRC_COMMON_THREAD_POOL_H_
