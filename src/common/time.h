// Time representation used throughout the Tableau reproduction.
//
// All times and durations are expressed as signed 64-bit nanosecond counts,
// mirroring the paper's choice of nanosecond-granularity scheduling tables
// (the hyperperiod of 102,702,600 ns is specified in ns in Sec. 5).
#ifndef SRC_COMMON_TIME_H_
#define SRC_COMMON_TIME_H_

#include <cstdint>
#include <string>

namespace tableau {

// A point in time or a duration, in nanoseconds.
using TimeNs = std::int64_t;

inline constexpr TimeNs kNanosecond = 1;
inline constexpr TimeNs kMicrosecond = 1'000;
inline constexpr TimeNs kMillisecond = 1'000'000;
inline constexpr TimeNs kSecond = 1'000'000'000;

// Sentinel for "no deadline / never".
inline constexpr TimeNs kTimeNever = INT64_MAX;

// Converts a nanosecond count to fractional milliseconds.
constexpr double ToMs(TimeNs t) { return static_cast<double>(t) / kMillisecond; }

// Converts a nanosecond count to fractional microseconds.
constexpr double ToUs(TimeNs t) { return static_cast<double>(t) / kMicrosecond; }

// Converts a nanosecond count to fractional seconds.
constexpr double ToSec(TimeNs t) { return static_cast<double>(t) / kSecond; }

// Renders a duration with an adaptive unit, e.g. "13.2ms" or "250us".
std::string FormatDuration(TimeNs t);

}  // namespace tableau

#endif  // SRC_COMMON_TIME_H_
