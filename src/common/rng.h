// Deterministic pseudo-random number generator (xoshiro256**) used by the
// workload generators and property tests. Deterministic seeding keeps every
// experiment exactly reproducible run-to-run.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

#include "src/common/check.h"

namespace tableau {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    TABLEAU_CHECK(lo <= hi);
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) {
      return static_cast<std::int64_t>(Next());  // Full 64-bit range.
    }
    return lo + static_cast<std::int64_t>(Next() % range);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) { return lo + UniformDouble() * (hi - lo); }

  // Exponentially distributed value with the given mean (for Poisson arrivals).
  double Exponential(double mean);

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace tableau

#endif  // SRC_COMMON_RNG_H_
