// Small helpers for accumulating and printing scalar statistics: running
// mean/min/max and formatted experiment-output rows.
#ifndef SRC_STATS_SUMMARY_H_
#define SRC_STATS_SUMMARY_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace tableau {

// Streaming mean/min/max/count accumulator over doubles.
class RunningStat {
 public:
  void Record(double value) {
    count_++;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  std::uint64_t Count() const { return count_; }
  double Sum() const { return sum_; }
  double Mean() const { return count_ == 0 ? 0 : sum_ / static_cast<double>(count_); }
  double Min() const { return count_ == 0 ? 0 : min_; }
  double Max() const { return count_ == 0 ? 0 : max_; }

  void Reset() { *this = RunningStat(); }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 1e300;
  double max_ = -1e300;
};

}  // namespace tableau

#endif  // SRC_STATS_SUMMARY_H_
