// Small helpers for accumulating and printing scalar statistics: running
// mean/min/max and formatted experiment-output rows.
#ifndef SRC_STATS_SUMMARY_H_
#define SRC_STATS_SUMMARY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

namespace tableau {

// Streaming mean/min/max/count/variance accumulator over doubles. Variance
// uses Welford's online algorithm, which stays numerically stable when the
// mean dwarfs the spread (e.g. nanosecond latencies in the 10^9 range with
// microsecond jitter — the naive sum-of-squares form cancels catastrophically
// there).
class RunningStat {
 public:
  void Record(double value) {
    count_++;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
  }

  std::uint64_t Count() const { return count_; }
  double Sum() const { return sum_; }
  double Mean() const { return count_ == 0 ? 0 : sum_ / static_cast<double>(count_); }
  double Min() const { return count_ == 0 ? 0 : min_; }
  double Max() const { return count_ == 0 ? 0 : max_; }
  // Sample variance (n - 1 denominator); 0 with fewer than two samples.
  double Variance() const {
    return count_ < 2 ? 0 : m2_ / static_cast<double>(count_ - 1);
  }
  double StdDev() const { return std::sqrt(Variance()); }

  void Reset() { *this = RunningStat(); }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 1e300;
  double max_ = -1e300;
  // Welford state: running mean and sum of squared deviations from it.
  double mean_ = 0;
  double m2_ = 0;
};

}  // namespace tableau

#endif  // SRC_STATS_SUMMARY_H_
