// Log-bucketed latency histogram, in the spirit of HdrHistogram (used by
// wrk2, the load generator in the paper's Sec. 7.4 evaluation).
//
// Values are bucketed with 64 sub-buckets per power of two, giving a worst-
// case relative quantile error of ~1.6%. Exact minimum, maximum, count, and
// sum are tracked on the side so Min()/Max()/Mean() are exact.
#ifndef SRC_STATS_HISTOGRAM_H_
#define SRC_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"

namespace tableau {

class Histogram {
 public:
  Histogram();

  // Records one sample. Negative samples are clamped to zero.
  void Record(TimeNs value);

  // Merges another histogram into this one.
  void Merge(const Histogram& other);

  std::uint64_t Count() const { return count_; }
  TimeNs Min() const { return count_ == 0 ? 0 : min_; }
  TimeNs Max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;
  // Exact sample variance/stddev (n - 1 denominator), tracked on the side
  // with Welford's update — not derived from the lossy buckets. 0 with fewer
  // than two samples.
  double Variance() const;
  double StdDev() const;

  // Returns the value at quantile q in [0, 1]. Percentile(1.0) returns the
  // exact maximum. Returns 0 for an empty histogram.
  TimeNs Percentile(double q) const;

  void Reset();

 private:
  static constexpr int kSubBucketBits = 7;  // 128 sub-buckets per octave (~1.6% error).
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kOctaves = 64 - kSubBucketBits;

  // Maps a non-negative value to a bucket index.
  static int BucketIndex(std::uint64_t value);
  // Representative (upper-edge) value of a bucket.
  static std::uint64_t BucketUpperEdge(int index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  TimeNs min_ = kTimeNever;
  TimeNs max_ = 0;
  // Welford state: running mean and sum of squared deviations from it.
  double mean_ = 0;
  double m2_ = 0;
};

}  // namespace tableau

#endif  // SRC_STATS_HISTOGRAM_H_
