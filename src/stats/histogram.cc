#include "src/stats/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace tableau {

Histogram::Histogram() : buckets_(static_cast<std::size_t>(kOctaves) * kSubBuckets, 0) {}

int Histogram::BucketIndex(std::uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<int>(value);
  }
  const int msb = 63 - std::countl_zero(value);
  const int octave = msb - kSubBucketBits + 1;
  // For values >= kSubBuckets, `value >> octave` lies in [kSubBuckets/2, kSubBuckets).
  const int sub_index = static_cast<int>(value >> octave);
  TABLEAU_CHECK(sub_index >= kSubBuckets / 2 && sub_index < kSubBuckets);
  return octave * kSubBuckets + sub_index;
}

std::uint64_t Histogram::BucketUpperEdge(int index) {
  const int octave = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  if (octave == 0) {
    return static_cast<std::uint64_t>(sub);
  }
  // Bucket covers [sub << octave, ((sub + 1) << octave) - 1].
  return ((static_cast<std::uint64_t>(sub) + 1) << octave) - 1;
}

void Histogram::Record(TimeNs value) {
  const std::uint64_t v = value < 0 ? 0 : static_cast<std::uint64_t>(value);
  const int index = BucketIndex(v);
  TABLEAU_CHECK(index >= 0 && index < static_cast<int>(buckets_.size()));
  buckets_[static_cast<std::size_t>(index)]++;
  count_++;
  sum_ += static_cast<double>(v);
  min_ = std::min<TimeNs>(min_, value < 0 ? 0 : value);
  max_ = std::max<TimeNs>(max_, value < 0 ? 0 : value);
  const double d = static_cast<double>(v);
  const double delta = d - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (d - mean_);
}

void Histogram::Merge(const Histogram& other) {
  TABLEAU_CHECK(buckets_.size() == other.buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  // Chan et al.'s pairwise combination of the Welford states: exact for the
  // concatenated sample stream.
  if (other.count_ > 0) {
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::Mean() const {
  if (count_ == 0) {
    return 0;
  }
  return sum_ / static_cast<double>(count_);
}

double Histogram::Variance() const {
  return count_ < 2 ? 0 : m2_ / static_cast<double>(count_ - 1);
}

double Histogram::StdDev() const { return std::sqrt(Variance()); }

TimeNs Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  TABLEAU_CHECK(q >= 0.0 && q <= 1.0);
  if (q >= 1.0) {
    return max_;
  }
  // Ceiling-rank semantics: the q-quantile is the smallest sample whose
  // cumulative frequency reaches q. Flooring instead under-reports the tail
  // for small counts (p99.9 of 100 samples would return the 99th sample, not
  // the maximum).
  const std::uint64_t target = std::min<std::uint64_t>(
      count_, std::max<std::uint64_t>(
                  1, static_cast<std::uint64_t>(
                         std::ceil(q * static_cast<double>(count_)))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      const auto edge = BucketUpperEdge(static_cast<int>(i));
      return std::min<TimeNs>(static_cast<TimeNs>(edge), max_);
    }
  }
  return max_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = kTimeNever;
  max_ = 0;
  mean_ = 0;
  m2_ = 0;
}

}  // namespace tableau
