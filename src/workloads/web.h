// Web-server workload (Sec. 7.4): the vantage VM hosts an nginx-like server
// that serves fixed-size files over HTTPS; a wrk2-like open-loop client
// generates requests at a constant rate and measures latency from the
// *intended* send time, avoiding the Coordinated Omission problem.
//
// Per-request server work: a base CPU cost (request parsing, TLS, the PHP
// "application") followed by a copy loop that moves the response into the
// virtual NIC's ring buffer chunk by chunk, blocking for ring space when the
// NIC is backed up. A request completes when its last byte leaves the wire,
// so large responses are transmission-bound and expose the rigid-table
// device-utilization effect of Sec. 7.5.
#ifndef SRC_WORKLOADS_WEB_H_
#define SRC_WORKLOADS_WEB_H_

#include <cstdint>
#include <deque>

#include "src/hypervisor/machine.h"
#include "src/net/virtual_nic.h"
#include "src/obs/telemetry.h"
#include "src/stats/histogram.h"

namespace tableau {

class WebServerWorkload {
 public:
  struct Config {
    std::int64_t file_bytes = 100 * 1024;
    // Base CPU per request (parse + TLS handshake work + PHP). Calibrated so
    // ~1,650 1 KiB requests/s saturate a 25% CPU share (Fig. 7b's Tableau
    // peak).
    TimeNs base_cpu = 150 * kMicrosecond;
    // Copy/encrypt cost per KiB moved into the NIC ring. Deliberately faster
    // than the wire (a ~3.3 GB/s fill rate vs the VF's 0.625 GB/s drain
    // rate) so that large responses are transmission-bound, per Sec. 7.5.
    TimeNs cpu_per_kib = 300;
    // Bytes handed to the NIC per send() call.
    std::int64_t chunk_bytes = 64 * 1024;
    // One-way client<->server network delay.
    TimeNs network_delay = 50 * kMicrosecond;
    // The SR-IOV VF's effective share of the contended 10 GbE port.
    VirtualNic::Config nic{.bandwidth_bits_per_sec = 5e9, .ring_bytes = 256 * 1024};
  };

  WebServerWorkload(Machine* machine, Vcpu* vcpu, Config config);

  // Delivers a request to the server. `intended` is the client's scheduled
  // send time (the latency baseline, per wrk2).
  void RequestArrived(TimeNs intended);

  // Attaches request-span telemetry (optional). Each request becomes one
  // span from server arrival to last-byte completion; the client->server
  // delay and the trailing wire drain are reported as the network component,
  // so span components sum to exactly the recorded (done - intended) latency.
  void AttachTelemetry(obs::Telemetry* telemetry) { telemetry_ = telemetry; }

  const Histogram& latencies() const { return latencies_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t accepted() const { return accepted_; }
  const VirtualNic& nic() const { return nic_; }

 private:
  enum class Phase { kIdle, kBase, kCopy, kWaitRing };

  struct Request {
    TimeNs intended;
    std::int64_t remaining;
    obs::Telemetry::RequestMark mark;
    bool tracked = false;
  };

  void BeginFront();
  void OnBurstComplete();
  // Advances the copy loop: issues the next chunk, waits for ring space, or
  // finishes the request.
  void ContinueSend();
  void FinishFront();

  Machine* machine_;
  Vcpu* vcpu_;
  Config config_;
  VirtualNic nic_;
  std::deque<Request> queue_;
  Phase phase_ = Phase::kIdle;
  std::int64_t pending_chunk_ = 0;
  Histogram latencies_;
  std::uint64_t completed_ = 0;
  std::uint64_t accepted_ = 0;
  obs::Telemetry* telemetry_ = nullptr;
};

// wrk2-style constant-rate open-loop request generator.
class OpenLoopClient {
 public:
  struct Config {
    double requests_per_sec = 100;
    TimeNs duration = 10 * kSecond;
    TimeNs network_delay = 50 * kMicrosecond;
  };

  OpenLoopClient(Machine* machine, WebServerWorkload* server, Config config);

  // Generates arrivals in [at, at + duration) at constant spacing. A single
  // re-armed pacer event walks the arrival grid, so memory stays O(1)
  // instead of O(rate * duration) pre-scheduled closures.
  void Start(TimeNs at);

  std::uint64_t sent() const { return sent_; }

 private:
  // Intended send time of the k-th request on the constant-rate grid.
  TimeNs Intended(std::uint64_t k) const;
  void OnTick();

  Machine* machine_;
  WebServerWorkload* server_;
  Config config_;
  EventId pacer_ = kInvalidEvent;
  TimeNs start_at_ = 0;
  std::uint64_t next_k_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t sent_ = 0;
};

}  // namespace tableau

#endif  // SRC_WORKLOADS_WEB_H_
