#include "src/workloads/ping.h"

namespace tableau {

PingTraffic::PingTraffic(Machine* machine, WorkQueueGuest* guest, Config config)
    : machine_(machine), guest_(guest), config_(config), rng_(config.seed) {}

void PingTraffic::AttachTelemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  // Sized for the realistic in-flight high-water mark; pings beyond it
  // simply go unspanned (counted in span_overflows_).
  marks_.assign(1024, MarkSlot{});
}

void PingTraffic::Start(TimeNs at) {
  for (int thread = 0; thread < config_.threads; ++thread) {
    send_timers_.push_back(machine_->sim().CreateTimer([this, thread] { SendOne(thread); }));
    remaining_.push_back(config_.pings_per_thread);
    machine_->sim().ScheduleAt(at, [this, thread] { ArmNext(thread); });
  }
}

void PingTraffic::ArmNext(int thread) {
  if (remaining_[static_cast<std::size_t>(thread)] <= 0) {
    return;
  }
  const TimeNs spacing = rng_.UniformInt(0, config_.max_spacing);
  machine_->sim().Arm(send_timers_[static_cast<std::size_t>(thread)],
                      machine_->Now() + spacing);
}

void PingTraffic::SendOne(int thread) {
  const TimeNs sent_at = machine_->Now();
  ++outstanding_;
  // One-way network delay before the echo request reaches the VM.
  machine_->sim().ScheduleAfter(config_.network_delay,
                                [this, sent_at] { OnArrival(sent_at); });
  --remaining_[static_cast<std::size_t>(thread)];
  ArmNext(thread);
}

void PingTraffic::OnArrival(TimeNs sent_at) {
  // Span the request from its guest arrival; the echo's wire legs (request
  // in, reply out) become the span's network component at completion.
  int slot = -1;
  if (telemetry_ != nullptr) {
    const int size = static_cast<int>(marks_.size());
    for (int probe = 0; probe < size; ++probe) {
      const int idx = (next_mark_ + probe) % size;
      if (!marks_[static_cast<std::size_t>(idx)].live) {
        slot = idx;
        break;
      }
    }
    if (slot >= 0) {
      MarkSlot& mark = marks_[static_cast<std::size_t>(slot)];
      mark.mark = telemetry_->BeginRequest(guest_->vcpu()->id(), machine_->Now());
      mark.live = true;
      next_mark_ = slot + 1;
    } else {
      ++span_overflows_;
    }
  }
  // ICMP echoes are handled in the guest kernel, ahead of user-level work.
  guest_->PostUrgent(config_.per_ping_cpu, [this, sent_at, slot](TimeNs done) {
    // Echo reply traverses the network back to the client.
    const TimeNs rtt = (done + config_.network_delay) - sent_at;
    latencies_.Record(rtt);
    --outstanding_;
    if (slot >= 0) {
      MarkSlot& mark = marks_[static_cast<std::size_t>(slot)];
      telemetry_->EndRequest(guest_->vcpu()->id(), mark.mark, done,
                             rtt - (done - mark.mark.at));
      mark.live = false;
    }
  });
}

}  // namespace tableau
