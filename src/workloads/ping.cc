#include "src/workloads/ping.h"

namespace tableau {

PingTraffic::PingTraffic(Machine* machine, WorkQueueGuest* guest, Config config)
    : machine_(machine), guest_(guest), config_(config), rng_(config.seed) {}

void PingTraffic::Start(TimeNs at) {
  for (int thread = 0; thread < config_.threads; ++thread) {
    send_timers_.push_back(machine_->sim().CreateTimer([this, thread] { SendOne(thread); }));
    remaining_.push_back(config_.pings_per_thread);
    machine_->sim().ScheduleAt(at, [this, thread] { ArmNext(thread); });
  }
}

void PingTraffic::ArmNext(int thread) {
  if (remaining_[static_cast<std::size_t>(thread)] <= 0) {
    return;
  }
  const TimeNs spacing = rng_.UniformInt(0, config_.max_spacing);
  machine_->sim().Arm(send_timers_[static_cast<std::size_t>(thread)],
                      machine_->Now() + spacing);
}

void PingTraffic::SendOne(int thread) {
  const TimeNs sent_at = machine_->Now();
  ++outstanding_;
  // One-way network delay before the echo request reaches the VM.
  machine_->sim().ScheduleAfter(config_.network_delay,
                                [this, sent_at] { OnArrival(sent_at); });
  --remaining_[static_cast<std::size_t>(thread)];
  ArmNext(thread);
}

void PingTraffic::OnArrival(TimeNs sent_at) {
  // ICMP echoes are handled in the guest kernel, ahead of user-level work.
  guest_->PostUrgent(config_.per_ping_cpu, [this, sent_at](TimeNs done) {
    // Echo reply traverses the network back to the client.
    const TimeNs rtt = (done + config_.network_delay) - sent_at;
    latencies_.Record(rtt);
    --outstanding_;
  });
}

}  // namespace tableau
