// WorkQueueGuest: a minimal guest-OS model — a FIFO of CPU work items
// executed by the vCPU, blocking when empty.
//
// The paper pins its measurement workloads at the highest SCHED_FIFO
// priority "to take the guest OS's scheduler out of the picture", so a
// run-to-completion FIFO is exactly the measured configuration.
#ifndef SRC_WORKLOADS_GUEST_H_
#define SRC_WORKLOADS_GUEST_H_

#include <deque>
#include <functional>

#include "src/hypervisor/machine.h"

namespace tableau {

class WorkQueueGuest {
 public:
  WorkQueueGuest(Machine* machine, Vcpu* vcpu);

  // Enqueues a CPU work item; `on_done(now)` fires when its burst completes.
  // Wakes the vCPU if it was idle.
  void Post(TimeNs cpu_ns, std::function<void(TimeNs)> on_done);

  // Enqueues a work item ahead of all queued (but not the in-progress) work:
  // models guest-kernel-level processing such as ICMP echo handling, which
  // preempts user-level work (Sec. 7.3).
  void PostUrgent(TimeNs cpu_ns, std::function<void(TimeNs)> on_done);

  Vcpu* vcpu() { return vcpu_; }

 private:
  struct Item {
    TimeNs cpu_ns;
    std::function<void(TimeNs)> on_done;
  };

  void Insert(Item item, bool urgent);
  void OnBurstComplete();

  Machine* machine_;
  Vcpu* vcpu_;
  std::deque<Item> queue_;
};

}  // namespace tableau

#endif  // SRC_WORKLOADS_GUEST_H_
