#include "src/workloads/stress.h"

#include "src/common/check.h"
#include "src/workloads/guest.h"

namespace tableau {

StressIoWorkload::StressIoWorkload(Machine* machine, Vcpu* vcpu, Config config)
    : machine_(machine),
      owned_guest_(std::make_unique<WorkQueueGuest>(machine, vcpu)),
      guest_(owned_guest_.get()),
      config_(config),
      rng_(config.seed) {}

StressIoWorkload::StressIoWorkload(Machine* machine, WorkQueueGuest* guest, Config config)
    : machine_(machine), guest_(guest), config_(config), rng_(config.seed) {}

TimeNs StressIoWorkload::Jittered(TimeNs base) {
  const double factor = rng_.UniformDouble(1.0 - config_.jitter, 1.0 + config_.jitter);
  const TimeNs value = static_cast<TimeNs>(static_cast<double>(base) * factor);
  return value > 1 ? value : 1;
}

void StressIoWorkload::Start(TimeNs at) {
  pacer_ = machine_->sim().CreateTimer([this] { PostIteration(); });
  machine_->sim().Arm(pacer_, at);
}

void StressIoWorkload::PostIteration() {
  guest_->Post(Jittered(config_.compute), [this](TimeNs) {
    ++iterations_;
    // The blocking I/O completes io_wait later; the guest idles (or runs
    // other queued work, e.g. system noise) in between.
    machine_->sim().Arm(pacer_, machine_->Now() + Jittered(config_.io_wait));
  });
}

CpuHogWorkload::CpuHogWorkload(Machine* machine, Vcpu* vcpu)
    : machine_(machine), vcpu_(vcpu) {
  // Never completes a burst, so no handler is needed; set one defensively.
  vcpu_->on_burst_complete = [] { TABLEAU_CHECK_MSG(false, "CPU hog burst completed"); };
}

void CpuHogWorkload::Start(TimeNs at) {
  machine_->sim().ScheduleAt(at, [this] {
    machine_->SetBurst(vcpu_, kTimeNever);
    machine_->Wake(vcpu_->id());
  });
}

SystemNoiseWorkload::SystemNoiseWorkload(Machine* machine, WorkQueueGuest* guest,
                                         Config config)
    : machine_(machine), guest_(guest), config_(config), rng_(config.seed) {}

void SystemNoiseWorkload::Start(TimeNs at) {
  pacer_ = machine_->sim().CreateTimer([this] { Tick(); });
  machine_->sim().Arm(
      pacer_, at + rng_.UniformInt(0, config_.max_interval - config_.min_interval));
}

void SystemNoiseWorkload::Tick() {
  TimeNs burst = rng_.UniformInt(config_.min_burst, config_.max_burst);
  while (burst > 0) {
    const TimeNs chunk = burst < config_.chunk ? burst : config_.chunk;
    guest_->Post(chunk, nullptr);
    burst -= chunk;
  }
  machine_->sim().Arm(pacer_, machine_->Now() + rng_.UniformInt(config_.min_interval,
                                                                config_.max_interval));
}

}  // namespace tableau
