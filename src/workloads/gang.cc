#include "src/workloads/gang.h"

#include "src/common/check.h"

namespace tableau {

GangWorkload::GangWorkload(Machine* machine, std::vector<Vcpu*> members, Config config)
    : machine_(machine), config_(config) {
  TABLEAU_CHECK(!members.empty());
  for (Vcpu* member : members) {
    guests_.push_back(std::make_unique<WorkQueueGuest>(machine, member));
  }
}

void GangWorkload::Start(TimeNs at) {
  phase_timer_ = machine_->sim().CreateTimer([this] { BeginPhase(); });
  machine_->sim().Arm(phase_timer_, at);
}

void GangWorkload::BeginPhase() {
  arrived_ = 0;
  for (auto& guest : guests_) {
    guest->Post(config_.phase_cpu, [this](TimeNs) { MemberArrived(); });
  }
}

void GangWorkload::MemberArrived() {
  if (++arrived_ < guests_.size()) {
    return;
  }
  ++phases_completed_;
  // Barrier release: the members resume after the notification overhead.
  machine_->sim().Arm(phase_timer_, machine_->Now() + config_.barrier_overhead);
}

}  // namespace tableau
