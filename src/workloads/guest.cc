#include "src/workloads/guest.h"

#include <utility>

#include "src/common/check.h"

namespace tableau {

WorkQueueGuest::WorkQueueGuest(Machine* machine, Vcpu* vcpu)
    : machine_(machine), vcpu_(vcpu) {
  vcpu_->on_burst_complete = [this] { OnBurstComplete(); };
}

void WorkQueueGuest::Post(TimeNs cpu_ns, std::function<void(TimeNs)> on_done) {
  Insert(Item{cpu_ns, std::move(on_done)}, /*urgent=*/false);
}

void WorkQueueGuest::PostUrgent(TimeNs cpu_ns, std::function<void(TimeNs)> on_done) {
  Insert(Item{cpu_ns, std::move(on_done)}, /*urgent=*/true);
}

void WorkQueueGuest::Insert(Item item, bool urgent) {
  TABLEAU_CHECK(item.cpu_ns > 0);
  const bool was_empty = queue_.empty();
  const TimeNs cpu_ns = item.cpu_ns;
  if (urgent && !was_empty) {
    // The front item is in progress (its burst is armed); insert right
    // behind it, ahead of all other queued work.
    queue_.insert(queue_.begin() + 1, std::move(item));
  } else {
    queue_.push_back(std::move(item));
  }
  if (was_empty && vcpu_->state() == VcpuState::kBlocked) {
    machine_->SetBurst(vcpu_, cpu_ns);
    machine_->Wake(vcpu_->id());
  } else if (was_empty && vcpu_->state() == VcpuState::kRunnable &&
             vcpu_->running_on() == kNoCpu) {
    // Runnable but not dispatched yet (e.g., woken earlier with pending
    // work that was since consumed): just arm the burst.
    machine_->SetBurst(vcpu_, cpu_ns);
  }
}

void WorkQueueGuest::OnBurstComplete() {
  TABLEAU_CHECK(!queue_.empty());
  Item item = std::move(queue_.front());
  queue_.pop_front();
  if (item.on_done) {
    item.on_done(machine_->Now());
  }
  // on_done may have posted more work.
  if (!queue_.empty()) {
    machine_->SetBurst(vcpu_, queue_.front().cpu_ns);
  } else {
    machine_->Block(vcpu_);
  }
}

}  // namespace tableau
