// Barrier-synchronized parallel workload ("gang"): models the parallel
// applications for which the paper suggests co-scheduling post-processing
// ("a pass to encourage ... co-scheduling of certain VMs ... for
// synchronization purposes", Sec. 5).
//
// The gang consists of k vCPUs executing phases: each vCPU computes
// `phase_cpu` and then waits at a barrier; the next phase starts when every
// member has arrived. Without temporal alignment of the members' table
// slots, each phase stalls for the slowest member's next slot, so phase
// throughput collapses to roughly one phase per table period; with aligned
// slots the gang streams phases back to back.
#ifndef SRC_WORKLOADS_GANG_H_
#define SRC_WORKLOADS_GANG_H_

#include <memory>
#include <vector>

#include "src/hypervisor/machine.h"
#include "src/workloads/guest.h"

namespace tableau {

class GangWorkload {
 public:
  struct Config {
    TimeNs phase_cpu = 2 * kMillisecond;  // Per-member compute per phase.
    TimeNs barrier_overhead = 20 * kMicrosecond;  // Notify/wake cost model.
  };

  GangWorkload(Machine* machine, std::vector<Vcpu*> members, Config config);

  void Start(TimeNs at);

  std::uint64_t phases_completed() const { return phases_completed_; }

 private:
  void BeginPhase();
  void MemberArrived();

  Machine* machine_;
  Config config_;
  std::vector<std::unique_ptr<WorkQueueGuest>> guests_;
  EventId phase_timer_ = kInvalidEvent;  // Persistent barrier-release timer.
  std::size_t arrived_ = 0;
  std::uint64_t phases_completed_ = 0;
};

}  // namespace tableau

#endif  // SRC_WORKLOADS_GANG_H_
