// Background workload models based on the `stress` POSIX workload generator
// used in the paper (Sec. 7.2):
//  - StressIoWorkload: I/O-intensive loop (short compute, short blocking
//    I/O wait) that triggers the VM scheduler at a high rate;
//  - CpuHogWorkload: the cache-thrashing, fully CPU-bound worker that never
//    voluntarily invokes the scheduler;
//  - SystemNoiseWorkload: occasional bursty CPU demand from guest system
//    processes ("while VMs are not running any benchmark, they still require
//    CPU time occasionally", Sec. 7.3).
#ifndef SRC_WORKLOADS_STRESS_H_
#define SRC_WORKLOADS_STRESS_H_

#include <memory>

#include "src/common/rng.h"
#include "src/hypervisor/machine.h"
#include "src/workloads/guest.h"

namespace tableau {

class StressIoWorkload {
 public:
  struct Config {
    // Blocking-dominated profile: short CPU bursts between comparatively
    // long blocking waits, triggering the VM scheduler at a high rate
    // (~2,000 wake-ups/s per VM).
    TimeNs compute = 75 * kMicrosecond;   // CPU burst per iteration.
    TimeNs io_wait = 425 * kMicrosecond;  // Blocking I/O completion delay.
    double jitter = 0.5;  // Uniform +/- fraction on both.
    std::uint64_t seed = 1;

    // Saturating profile, like `stress -i`'s sync() spin: simultaneously
    // CPU-hungry (~75% duty, far above a 25% cap) and scheduler-hammering
    // (~10,000 wake-ups/s per VM). The uncapped results in Figs. 5(b) and 7
    // imply background demand well above machine capacity, which this
    // profile provides.
    static Config Heavy() {
      Config config;
      config.compute = 75 * kMicrosecond;
      config.io_wait = 25 * kMicrosecond;
      return config;
    }
  };

  // Owns the vCPU's work queue exclusively.
  StressIoWorkload(Machine* machine, Vcpu* vcpu, Config config);
  // Shares an existing work queue (so a VM can run stress *and* system
  // noise, as a real guest does).
  StressIoWorkload(Machine* machine, WorkQueueGuest* guest, Config config);

  // Begins the compute/block/wake loop at time `at`.
  void Start(TimeNs at);

  std::uint64_t iterations() const { return iterations_; }

 private:
  TimeNs Jittered(TimeNs base);
  void PostIteration();

  Machine* machine_;
  std::unique_ptr<WorkQueueGuest> owned_guest_;
  WorkQueueGuest* guest_;
  Config config_;
  Rng rng_;
  EventId pacer_ = kInvalidEvent;  // Persistent timer driving PostIteration().
  std::uint64_t iterations_ = 0;
};

class CpuHogWorkload {
 public:
  CpuHogWorkload(Machine* machine, Vcpu* vcpu);

  // Starts an endless CPU burn at time `at`.
  void Start(TimeNs at);

 private:
  Machine* machine_;
  Vcpu* vcpu_;
};

class SystemNoiseWorkload {
 public:
  struct Config {
    TimeNs min_interval = 50 * kMillisecond;
    TimeNs max_interval = 150 * kMillisecond;
    TimeNs min_burst = 500 * kMicrosecond;
    TimeNs max_burst = 3 * kMillisecond;
    // Bursts are posted as a series of chunks so kernel-level work (e.g.
    // ICMP handling via PostUrgent) can interleave, as it would under a
    // preemptive guest kernel.
    TimeNs chunk = 200 * kMicrosecond;
    std::uint64_t seed = 1;
  };

  // Posts bursty background work onto an existing guest work queue.
  SystemNoiseWorkload(Machine* machine, WorkQueueGuest* guest, Config config);

  void Start(TimeNs at);

 private:
  void Tick();

  Machine* machine_;
  WorkQueueGuest* guest_;
  Config config_;
  Rng rng_;
  EventId pacer_ = kInvalidEvent;  // Persistent timer driving Tick().
};

}  // namespace tableau

#endif  // SRC_WORKLOADS_STRESS_H_
