#include "src/workloads/web.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/math_util.h"

namespace tableau {

WebServerWorkload::WebServerWorkload(Machine* machine, Vcpu* vcpu, Config config)
    : machine_(machine), vcpu_(vcpu), config_(config), nic_(config.nic) {
  TABLEAU_CHECK(config_.file_bytes > 0 && config_.chunk_bytes > 0);
  vcpu_->on_burst_complete = [this] { OnBurstComplete(); };
}

void WebServerWorkload::RequestArrived(TimeNs intended) {
  ++accepted_;
  Request request{intended, config_.file_bytes};
  if (telemetry_ != nullptr) {
    request.mark = telemetry_->BeginRequest(vcpu_->id(), machine_->Now());
    request.tracked = true;
  }
  queue_.push_back(request);
  if (phase_ == Phase::kIdle) {
    BeginFront();
  }
}

void WebServerWorkload::BeginFront() {
  TABLEAU_CHECK(!queue_.empty());
  phase_ = Phase::kBase;
  machine_->SetBurst(vcpu_, config_.base_cpu);
  if (vcpu_->state() == VcpuState::kBlocked) {
    machine_->Wake(vcpu_->id());
  }
}

void WebServerWorkload::OnBurstComplete() {
  switch (phase_) {
    case Phase::kBase:
      ContinueSend();
      return;
    case Phase::kCopy: {
      // The copy burst finished: hand the chunk to the NIC. The chunk was
      // sized against free ring space, which can only have grown since.
      const std::int64_t accepted = nic_.Enqueue(machine_->Now(), pending_chunk_);
      TABLEAU_CHECK(accepted == pending_chunk_);
      queue_.front().remaining -= pending_chunk_;
      pending_chunk_ = 0;
      ContinueSend();
      return;
    }
    case Phase::kIdle:
    case Phase::kWaitRing:
      TABLEAU_CHECK_MSG(false, "web server burst completed in phase %d",
                        static_cast<int>(phase_));
  }
}

void WebServerWorkload::ContinueSend() {
  Request& request = queue_.front();
  const TimeNs now = machine_->Now();
  if (request.remaining == 0) {
    FinishFront();
    return;
  }
  const std::int64_t want = std::min(config_.chunk_bytes, request.remaining);
  const std::int64_t free = nic_.FreeSpace(now);
  if (free < want) {
    // Ring backed up: block until the NIC's TX-complete interrupt signals
    // enough space. While the VM is descheduled, the NIC drains and idles —
    // the Sec. 7.5 device-underutilization effect.
    phase_ = Phase::kWaitRing;
    const TimeNs when = nic_.TimeWhenFree(now, want);
    machine_->Block(vcpu_);
    const VcpuId id = vcpu_->id();
    machine_->sim().ScheduleAt(std::max(now + 1, when), [this, id, want] {
      TABLEAU_CHECK(phase_ == Phase::kWaitRing);
      phase_ = Phase::kCopy;
      pending_chunk_ = want;
      machine_->SetBurst(vcpu_, CeilDiv(want, 1024) * config_.cpu_per_kib);
      machine_->Wake(id);
    });
    return;
  }
  phase_ = Phase::kCopy;
  pending_chunk_ = want;
  machine_->SetBurst(vcpu_, CeilDiv(want, 1024) * config_.cpu_per_kib);
}

void WebServerWorkload::FinishFront() {
  const Request request = queue_.front();
  queue_.pop_front();
  ++completed_;
  // The response is complete when its last byte is on the wire and has
  // crossed back to the client.
  const TimeNs now = machine_->Now();
  const TimeNs done = nic_.DrainCompleteTime(now) + config_.network_delay;
  latencies_.Record(done - request.intended);
  if (request.tracked) {
    // Network component: the client->server leg before the span opened plus
    // the wire drain + return leg after the last chunk was handed off — so
    // the components sum to exactly (done - intended).
    telemetry_->EndRequest(vcpu_->id(), request.mark, now,
                           (done - now) + (request.mark.at - request.intended));
  }

  if (!queue_.empty()) {
    phase_ = Phase::kBase;
    machine_->SetBurst(vcpu_, config_.base_cpu);
    // The vCPU is running (we are in its burst-complete context).
  } else {
    phase_ = Phase::kIdle;
    machine_->Block(vcpu_);
  }
}

OpenLoopClient::OpenLoopClient(Machine* machine, WebServerWorkload* server, Config config)
    : machine_(machine), server_(server), config_(config) {}

TimeNs OpenLoopClient::Intended(std::uint64_t k) const {
  // Must match the seed's arithmetic exactly (double grid, truncation) so
  // arrival instants — and therefore traces — are unchanged.
  const double spacing_ns = 1e9 / config_.requests_per_sec;
  return start_at_ + static_cast<TimeNs>(static_cast<double>(k) * spacing_ns);
}

void OpenLoopClient::OnTick() {
  const TimeNs intended = Intended(next_k_);
  ++sent_;
  server_->RequestArrived(intended);
  ++next_k_;
  if (next_k_ < count_) {
    machine_->sim().Arm(pacer_, Intended(next_k_) + config_.network_delay);
  }
}

void OpenLoopClient::Start(TimeNs at) {
  TABLEAU_CHECK(config_.requests_per_sec > 0);
  const double spacing_ns = 1e9 / config_.requests_per_sec;
  start_at_ = at;
  next_k_ = 0;
  count_ = static_cast<std::uint64_t>(static_cast<double>(config_.duration) / spacing_ns);
  pacer_ = machine_->sim().CreateTimer([this] { OnTick(); });
  if (count_ > 0) {
    machine_->sim().Arm(pacer_, Intended(0) + config_.network_delay);
  }
}

}  // namespace tableau
