// Ping latency workload (Sec. 7.3): a client sends randomly spaced ICMP
// echo requests to the vantage VM; echoes are handled directly in the guest
// kernel (no guest scheduler involved) but can only be processed while the
// VM is dispatched, so the measured round-trip time is dominated by the
// VM-scheduler-induced wake-up latency.
//
// Mirrors the paper's setup: `threads` client threads each send `pings`
// requests with uniformly random spacing in [0, max_spacing].
#ifndef SRC_WORKLOADS_PING_H_
#define SRC_WORKLOADS_PING_H_

#include <vector>

#include "src/common/rng.h"
#include "src/hypervisor/machine.h"
#include "src/stats/histogram.h"
#include "src/workloads/guest.h"

namespace tableau {

class PingTraffic {
 public:
  struct Config {
    int threads = 8;
    int pings_per_thread = 5000;
    TimeNs max_spacing = 200 * kMillisecond;
    TimeNs per_ping_cpu = 20 * kMicrosecond;  // Guest-kernel echo handling.
    TimeNs network_delay = 50 * kMicrosecond;  // One-way wire + host stack.
    std::uint64_t seed = 42;
  };

  // `guest` is the vantage VM's work queue. Ping arrivals are posted to it;
  // the echo leaves when the handling burst completes.
  PingTraffic(Machine* machine, WorkQueueGuest* guest, Config config);

  void Start(TimeNs at);

  const Histogram& latencies() const { return latencies_; }
  int outstanding() const { return outstanding_; }

 private:
  // Arms the thread's send timer after a random spacing (if pings remain).
  void ArmNext(int thread);
  // Fires one echo request and chains the next send.
  void SendOne(int thread);
  void OnArrival(TimeNs sent_at);

  Machine* machine_;
  WorkQueueGuest* guest_;
  Config config_;
  Rng rng_;
  Histogram latencies_;
  std::vector<EventId> send_timers_;  // One persistent send timer per thread.
  std::vector<int> remaining_;
  int outstanding_ = 0;
};

}  // namespace tableau

#endif  // SRC_WORKLOADS_PING_H_
