// Ping latency workload (Sec. 7.3): a client sends randomly spaced ICMP
// echo requests to the vantage VM; echoes are handled directly in the guest
// kernel (no guest scheduler involved) but can only be processed while the
// VM is dispatched, so the measured round-trip time is dominated by the
// VM-scheduler-induced wake-up latency.
//
// Mirrors the paper's setup: `threads` client threads each send `pings`
// requests with uniformly random spacing in [0, max_spacing].
#ifndef SRC_WORKLOADS_PING_H_
#define SRC_WORKLOADS_PING_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/hypervisor/machine.h"
#include "src/obs/telemetry.h"
#include "src/stats/histogram.h"
#include "src/workloads/guest.h"

namespace tableau {

class PingTraffic {
 public:
  struct Config {
    int threads = 8;
    int pings_per_thread = 5000;
    TimeNs max_spacing = 200 * kMillisecond;
    TimeNs per_ping_cpu = 20 * kMicrosecond;  // Guest-kernel echo handling.
    TimeNs network_delay = 50 * kMicrosecond;  // One-way wire + host stack.
    std::uint64_t seed = 42;
  };

  // `guest` is the vantage VM's work queue. Ping arrivals are posted to it;
  // the echo leaves when the handling burst completes.
  PingTraffic(Machine* machine, WorkQueueGuest* guest, Config config);

  void Start(TimeNs at);

  // Attaches request-span telemetry (optional; call before Start). Each ping
  // becomes one span from guest arrival to echo completion; the two wire
  // legs are reported as the network component, so the span's attribution
  // components sum to exactly the recorded round-trip time.
  void AttachTelemetry(obs::Telemetry* telemetry);

  const Histogram& latencies() const { return latencies_; }
  int outstanding() const { return outstanding_; }
  // Spans skipped because more pings were in flight than the mark ring holds.
  std::uint64_t span_overflows() const { return span_overflows_; }

 private:
  // Arms the thread's send timer after a random spacing (if pings remain).
  void ArmNext(int thread);
  // Fires one echo request and chains the next send.
  void SendOne(int thread);
  void OnArrival(TimeNs sent_at);

  Machine* machine_;
  WorkQueueGuest* guest_;
  Config config_;
  Rng rng_;
  Histogram latencies_;
  std::vector<EventId> send_timers_;  // One persistent send timer per thread.
  std::vector<int> remaining_;
  int outstanding_ = 0;

  // Request-span marks for in-flight pings, preallocated at Start so the
  // per-ping path never grows a container.
  struct MarkSlot {
    obs::Telemetry::RequestMark mark;
    bool live = false;
  };
  obs::Telemetry* telemetry_ = nullptr;
  std::vector<MarkSlot> marks_;
  int next_mark_ = 0;
  std::uint64_t span_overflows_ = 0;
};

}  // namespace tableau

#endif  // SRC_WORKLOADS_PING_H_
