#include "src/faults/fault_injector.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace tableau::faults {

namespace {

// SplitMix64 step: decorrelates the per-category streams from the raw seed.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Per-category salts: each stream sees a distinct seed even when the plan
// seed is tiny.
constexpr std::uint64_t kTimerSalt = 0x7461626c5f746d72ULL;    // "tabl_tmr"
constexpr std::uint64_t kIpiSalt = 0x7461626c5f697069ULL;      // "tabl_ipi"
constexpr std::uint64_t kGuestSalt = 0x7461626c5f677374ULL;    // "tabl_gst"
constexpr std::uint64_t kPlannerSalt = 0x7461626c5f706c6eULL;  // "tabl_pln"

TimeNs ScaleByMultiplier(TimeNs cost, double multiplier) {
  if (multiplier <= 1.0 || cost <= 0) {
    return cost;
  }
  const double scaled = static_cast<double>(cost) * multiplier;
  return static_cast<TimeNs>(std::llround(scaled));
}

}  // namespace

FaultPlan ChaosPlan(std::uint64_t seed, double intensity) {
  FaultPlan plan;
  plan.seed = seed;
  if (intensity <= 0.0) {
    return plan;
  }
  intensity = std::min(intensity, 1.0);

  // Overhead spike: up to 8x sched-op and 6x context-switch costs for the
  // middle half of every 200 ms (a periodic noisy-neighbor phase would need
  // windows; one long window keeps the plan simple and the effect steady).
  OverheadSpike spike;
  spike.sched_op_multiplier = 1.0 + 7.0 * intensity;
  spike.context_switch_multiplier = 1.0 + 5.0 * intensity;
  plan.overhead_spikes.push_back(spike);

  // Timer jitter up to 200 us plus 50 us coalescing at full intensity —
  // the regime where Tableau's table-switch deadline can genuinely slip.
  TimerFault timer;
  timer.max_jitter = static_cast<TimeNs>(200.0 * intensity) * kMicrosecond;
  timer.coalesce_quantum = static_cast<TimeNs>(50.0 * intensity) * kMicrosecond;
  plan.timer_faults.push_back(timer);

  // IPI degradation: up to 30% drop probability with 3 bounded retries and
  // up to 100 us extra delivery latency.
  IpiFault ipi;
  ipi.drop_probability = 0.3 * intensity;
  ipi.max_retries = 3;
  ipi.retry_interval = 50 * kMicrosecond;
  ipi.max_extra_delay = static_cast<TimeNs>(100.0 * intensity) * kMicrosecond;
  plan.ipi_faults.push_back(ipi);

  // Guest misbehavior: 5% of bursts overrun by up to 500 us; 10% of wakeups
  // trigger a storm of up to 4 spurious notifications.
  GuestFault guest;
  guest.overrun_probability = 0.05 * intensity;
  guest.max_overrun = static_cast<TimeNs>(500.0 * intensity) * kMicrosecond;
  guest.storm_probability = 0.1 * intensity;
  guest.max_storm_wakeups = 4;
  plan.guest_faults.push_back(guest);

  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      enabled_(!plan_.empty()),
      timer_rng_(Mix(plan_.seed ^ kTimerSalt)),
      ipi_rng_(Mix(plan_.seed ^ kIpiSalt)),
      guest_rng_(Mix(plan_.seed ^ kGuestSalt)),
      planner_rng_(Mix(plan_.seed ^ kPlannerSalt)) {
  for (const OverheadSpike& spike : plan_.overhead_spikes) {
    TABLEAU_CHECK(spike.sched_op_multiplier >= 0 &&
                  spike.context_switch_multiplier >= 0);
  }
  for (const TimerFault& fault : plan_.timer_faults) {
    TABLEAU_CHECK(fault.max_jitter >= 0 && fault.coalesce_quantum >= 0);
  }
  for (const IpiFault& fault : plan_.ipi_faults) {
    TABLEAU_CHECK(fault.drop_probability >= 0 && fault.drop_probability < 1.0);
    TABLEAU_CHECK(fault.max_retries >= 0 && fault.retry_interval >= 0);
    TABLEAU_CHECK(fault.max_extra_delay >= 0);
  }
  for (const GuestFault& fault : plan_.guest_faults) {
    TABLEAU_CHECK(fault.overrun_probability >= 0 && fault.overrun_probability <= 1.0);
    TABLEAU_CHECK(fault.storm_probability >= 0 && fault.storm_probability <= 1.0);
    TABLEAU_CHECK(fault.max_overrun >= 0 && fault.max_storm_wakeups >= 0);
  }
  TABLEAU_CHECK(plan_.planner.failure_probability >= 0 &&
                plan_.planner.failure_probability <= 1.0);
  TABLEAU_CHECK(plan_.planner.timeout_probability >= 0 &&
                plan_.planner.timeout_probability <= 1.0);
}

void FaultInjector::AttachMetrics(obs::MetricsRegistry* registry) {
  TABLEAU_CHECK(registry != nullptr);
  m_ops_scaled_ = registry->GetCounter("faults.sched_ops_scaled");
  m_context_switches_scaled_ = registry->GetCounter("faults.context_switches_scaled");
  m_timer_perturbations_ = registry->GetCounter("faults.timer_perturbations");
  m_timer_delay_ns_ = registry->GetHistogram("faults.timer_delay_ns");
  m_ipi_drops_ = registry->GetCounter("faults.ipi_drops");
  m_ipi_extra_delay_ns_ = registry->GetHistogram("faults.ipi_extra_delay_ns");
  m_burst_overruns_ = registry->GetCounter("faults.burst_overruns");
  m_burst_overrun_ns_ = registry->GetCounter("faults.burst_overrun_ns");
  m_wakeup_storms_ = registry->GetCounter("faults.wakeup_storms");
  m_planner_failures_ = registry->GetCounter("faults.planner_failures");
  m_planner_timeouts_ = registry->GetCounter("faults.planner_timeouts");
}

const OverheadSpike* FaultInjector::ActiveSpike(TimeNs now) const {
  for (const OverheadSpike& spike : plan_.overhead_spikes) {
    if (spike.window.Contains(now)) {
      return &spike;
    }
  }
  return nullptr;
}

const TimerFault* FaultInjector::ActiveTimerFault(TimeNs now) const {
  for (const TimerFault& fault : plan_.timer_faults) {
    if (fault.window.Contains(now)) {
      return &fault;
    }
  }
  return nullptr;
}

const IpiFault* FaultInjector::ActiveIpiFault(TimeNs now) const {
  for (const IpiFault& fault : plan_.ipi_faults) {
    if (fault.window.Contains(now)) {
      return &fault;
    }
  }
  return nullptr;
}

const GuestFault* FaultInjector::ActiveGuestFault(TimeNs now) const {
  for (const GuestFault& fault : plan_.guest_faults) {
    if (fault.window.Contains(now)) {
      return &fault;
    }
  }
  return nullptr;
}

TimeNs FaultInjector::ScaleSchedOpCost(TimeNs now, TimeNs cost) {
  if (!enabled_) {
    return cost;
  }
  const OverheadSpike* spike = ActiveSpike(now);
  if (spike == nullptr || spike->sched_op_multiplier <= 1.0) {
    return cost;
  }
  if (m_ops_scaled_ != nullptr) {
    m_ops_scaled_->Increment();
  }
  return ScaleByMultiplier(cost, spike->sched_op_multiplier);
}

TimeNs FaultInjector::ScaleContextSwitchCost(TimeNs now, TimeNs cost) {
  if (!enabled_) {
    return cost;
  }
  const OverheadSpike* spike = ActiveSpike(now);
  if (spike == nullptr || spike->context_switch_multiplier <= 1.0) {
    return cost;
  }
  if (m_context_switches_scaled_ != nullptr) {
    m_context_switches_scaled_->Increment();
  }
  return ScaleByMultiplier(cost, spike->context_switch_multiplier);
}

TimeNs FaultInjector::PerturbTimerArm(TimeNs now, TimeNs fire_at) {
  if (!enabled_ || fire_at == kTimeNever) {
    return fire_at;
  }
  const TimerFault* fault = ActiveTimerFault(now);
  if (fault == nullptr || (fault->max_jitter == 0 && fault->coalesce_quantum == 0)) {
    return fire_at;
  }
  TimeNs perturbed = fire_at;
  if (fault->max_jitter > 0) {
    perturbed += timer_rng_.NextBounded(fault->max_jitter);
  }
  if (fault->coalesce_quantum > 0) {
    const TimeNs q = fault->coalesce_quantum;
    perturbed = ((perturbed + q - 1) / q) * q;
  }
  if (perturbed != fire_at) {
    if (m_timer_perturbations_ != nullptr) {
      m_timer_perturbations_->Increment();
      m_timer_delay_ns_->Record(perturbed - fire_at);
    }
  }
  return perturbed;
}

TimeNs FaultInjector::PerturbIpiDelay(TimeNs now, TimeNs base_delay) {
  if (!enabled_) {
    return base_delay;
  }
  const IpiFault* fault = ActiveIpiFault(now);
  if (fault == nullptr) {
    return base_delay;
  }
  TimeNs delay = base_delay;
  // Bounded retry: each consecutive drop re-sends after retry_interval; the
  // (max_retries + 1)-th attempt always delivers, so a wake-up IPI is late
  // but never lost (losing it could stall the guest forever).
  int drops = 0;
  while (drops < fault->max_retries &&
         ipi_rng_.NextDouble() < fault->drop_probability) {
    ++drops;
    delay += fault->retry_interval;
  }
  if (drops > 0 && m_ipi_drops_ != nullptr) {
    m_ipi_drops_->Increment(drops);
  }
  if (fault->max_extra_delay > 0) {
    delay += ipi_rng_.NextBounded(fault->max_extra_delay);
  }
  if (delay > base_delay && m_ipi_extra_delay_ns_ != nullptr) {
    m_ipi_extra_delay_ns_->Record(delay - base_delay);
  }
  return delay;
}

TimeNs FaultInjector::NextBurstOverrun(TimeNs now) {
  if (!enabled_) {
    return 0;
  }
  const GuestFault* fault = ActiveGuestFault(now);
  if (fault == nullptr || fault->overrun_probability <= 0.0 || fault->max_overrun <= 0) {
    return 0;
  }
  if (guest_rng_.NextDouble() >= fault->overrun_probability) {
    return 0;
  }
  const TimeNs extra = 1 + guest_rng_.NextBounded(fault->max_overrun - 1);
  if (m_burst_overruns_ != nullptr) {
    m_burst_overruns_->Increment();
    m_burst_overrun_ns_->Increment(extra);
  }
  return extra;
}

int FaultInjector::NextWakeupStormCount(TimeNs now) {
  if (!enabled_) {
    return 0;
  }
  const GuestFault* fault = ActiveGuestFault(now);
  if (fault == nullptr || fault->storm_probability <= 0.0 ||
      fault->max_storm_wakeups <= 0) {
    return 0;
  }
  if (guest_rng_.NextDouble() >= fault->storm_probability) {
    return 0;
  }
  const int count =
      1 + static_cast<int>(guest_rng_.NextBounded(fault->max_storm_wakeups - 1));
  if (m_wakeup_storms_ != nullptr) {
    m_wakeup_storms_->Increment();
  }
  return count;
}

FaultInjector::PlannerOutcome FaultInjector::NextPlannerOutcome() {
  if (!enabled_) {
    return PlannerOutcome::kProceed;
  }
  const double roll = planner_rng_.NextDouble();
  if (roll < plan_.planner.failure_probability) {
    if (m_planner_failures_ != nullptr) {
      m_planner_failures_->Increment();
    }
    return PlannerOutcome::kFail;
  }
  if (roll < plan_.planner.failure_probability + plan_.planner.timeout_probability) {
    if (m_planner_timeouts_ != nullptr) {
      m_planner_timeouts_->Increment();
    }
    return PlannerOutcome::kTimeout;
  }
  return PlannerOutcome::kProceed;
}

}  // namespace tableau::faults
