// Deterministic fault injector: executes a FaultPlan against the simulated
// machine, the Tableau dispatcher, and the planner.
//
// Every perturbation is a pure function of (plan, seed, call sequence): the
// injector owns one xorshift64* stream per fault category, each seeded from
// the plan seed and a per-category salt, so the draw sequence of one
// category never shifts another's. The DES consumes injector hooks in event
// order, which is itself deterministic — two runs of the same scenario with
// the same plan produce byte-identical traces.
//
// With an empty plan (or no injector attached) every hook is the identity:
// no draws, no perturbation, traces match the fault-free goldens exactly.
//
// Metrics (faults.*) are registered on the machine's registry via
// AttachMetrics and count every injected perturbation; like all PR-3
// metrics they are pure observers and never feed back into the draws.
#ifndef SRC_FAULTS_FAULT_INJECTOR_H_
#define SRC_FAULTS_FAULT_INJECTOR_H_

#include <cstdint>

#include "src/faults/fault_plan.h"
#include "src/obs/metrics.h"

namespace tableau::faults {

// Minimal xorshift64* PRNG (Marsaglia / Vigna). Deliberately distinct from
// the workload generators' xoshiro256** (src/common/rng.h): fault draws and
// workload draws can never alias even under equal seeds.
class Xorshift64Star {
 public:
  explicit Xorshift64Star(std::uint64_t seed)
      : state_(seed != 0 ? seed : 0x9e3779b97f4a7c15ULL) {}

  std::uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform integer in [0, bound] (bound >= 0).
  std::int64_t NextBounded(std::int64_t bound) {
    if (bound <= 0) {
      return 0;
    }
    return static_cast<std::int64_t>(Next() %
                                     (static_cast<std::uint64_t>(bound) + 1));
  }

 private:
  std::uint64_t state_;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Registers the faults.* counters/histograms. Optional: without it the
  // injector perturbs silently. Not owned; must outlive the injector.
  void AttachMetrics(obs::MetricsRegistry* registry);

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return enabled_; }

  // --- Machine hooks (all identity functions when the plan is empty) ---

  // Scales one traced scheduler-operation cost by the active overhead spike.
  TimeNs ScaleSchedOpCost(TimeNs now, TimeNs cost);

  // Scales the context-switch cost by the active overhead spike.
  TimeNs ScaleContextSwitchCost(TimeNs now, TimeNs cost);

  // Perturbs a timer arm: returns a fire time >= fire_at, delayed by jitter
  // and rounded up to the active coalescing quantum. Monotone: never early.
  TimeNs PerturbTimerArm(TimeNs now, TimeNs fire_at);

  // Degrades one remote-kick (IPI) delivery: returns the total delivery
  // delay, starting from base_delay and adding bounded drop-retries plus
  // extra latency. Result >= base_delay; the IPI is late, never lost.
  TimeNs PerturbIpiDelay(TimeNs now, TimeNs base_delay);

  // Guest budget overrun: extra demand (ns) appended to a burst that just
  // completed at `now`, or 0. Bounded by the active fault's max_overrun.
  TimeNs NextBurstOverrun(TimeNs now);

  // Wakeup storm: number of spurious event-channel notifications following
  // a real wake-up at `now` (0 = none).
  int NextWakeupStormCount(TimeNs now);

  // --- Planner hook ---

  enum class PlannerOutcome { kProceed, kFail, kTimeout };

  // Drawn once per Planner::Solve call. Uses a dedicated stream so planner
  // injection cannot shift the machine-level draw sequences.
  PlannerOutcome NextPlannerOutcome();

 private:
  const OverheadSpike* ActiveSpike(TimeNs now) const;
  const TimerFault* ActiveTimerFault(TimeNs now) const;
  const IpiFault* ActiveIpiFault(TimeNs now) const;
  const GuestFault* ActiveGuestFault(TimeNs now) const;

  FaultPlan plan_;
  bool enabled_;

  Xorshift64Star timer_rng_;
  Xorshift64Star ipi_rng_;
  Xorshift64Star guest_rng_;
  Xorshift64Star planner_rng_;

  // faults.* metric handles; null until AttachMetrics.
  obs::Counter* m_ops_scaled_ = nullptr;
  obs::Counter* m_context_switches_scaled_ = nullptr;
  obs::Counter* m_timer_perturbations_ = nullptr;
  obs::LatencyHistogram* m_timer_delay_ns_ = nullptr;
  obs::Counter* m_ipi_drops_ = nullptr;
  obs::LatencyHistogram* m_ipi_extra_delay_ns_ = nullptr;
  obs::Counter* m_burst_overruns_ = nullptr;
  obs::Counter* m_burst_overrun_ns_ = nullptr;
  obs::Counter* m_wakeup_storms_ = nullptr;
  obs::Counter* m_planner_failures_ = nullptr;
  obs::Counter* m_planner_timeouts_ = nullptr;
};

}  // namespace tableau::faults

#endif  // SRC_FAULTS_FAULT_INJECTOR_H_
