// Declarative fault plans for the deterministic fault-injection subsystem.
//
// A FaultPlan describes *when* and *how hard* reality misbehaves: scheduler
// overhead spikes, timer jitter and coalescing error, dropped or delayed
// wake-up IPIs, guest misbehavior (budget overruns, wakeup storms), and
// injected planner failures. The plan is pure data; the FaultInjector
// (fault_injector.h) turns it into concrete perturbations, drawing every
// random decision from an xorshift PRNG keyed by the plan's seed — never
// from wall clock — so a scenario with a fixed seed replays byte-identically.
//
// An empty plan (the default) injects nothing: every injector hook becomes
// the identity function and the engine's traces match the no-injector
// goldens exactly.
#ifndef SRC_FAULTS_FAULT_PLAN_H_
#define SRC_FAULTS_FAULT_PLAN_H_

#include <cstdint>
#include <vector>

#include "src/common/time.h"

namespace tableau::faults {

// Half-open absolute time window [start, end). The default covers all time.
struct TimeWindow {
  TimeNs start = 0;
  TimeNs end = kTimeNever;
  bool Contains(TimeNs t) const { return t >= start && t < end; }
};

// Multiplies the cost of traced scheduler operations and context switches
// while the window is active (a co-located noisy neighbor, an SMI storm, a
// cache-thrashing phase). Multipliers below 1.0 are clamped to 1.0.
struct OverheadSpike {
  TimeWindow window;
  double sched_op_multiplier = 1.0;
  double context_switch_multiplier = 1.0;
};

// Perturbs per-CPU timer delivery: each arm is delayed by a uniform draw in
// [0, max_jitter], and fire times are additionally rounded up to the next
// multiple of coalesce_quantum (modeling hypervisor timer coalescing).
// Timers are only ever delayed, never advanced.
struct TimerFault {
  TimeWindow window;
  TimeNs max_jitter = 0;
  TimeNs coalesce_quantum = 0;
};

// Degrades remote kicks (wake-up IPIs): each delivery attempt is dropped
// with drop_probability and re-sent after retry_interval, up to max_retries
// consecutive drops (the bounded-retry protocol — delivery is late, never
// lost). Successful deliveries pick up a uniform extra delay in
// [0, max_extra_delay].
struct IpiFault {
  TimeWindow window;
  double drop_probability = 0.0;
  int max_retries = 3;
  TimeNs retry_interval = 50 * kMicrosecond;
  TimeNs max_extra_delay = 0;
};

// Guest misbehavior. Budget overrun: a completing compute burst continues
// for a uniform extra (0, max_overrun] with overrun_probability (the guest
// "briefly disables interrupts"). Wakeup storm: a real wake-up is followed
// by a uniform [1, max_storm_wakeups] spurious event-channel notifications,
// each costing a full wakeup-processing pass and a spurious local kick.
struct GuestFault {
  TimeWindow window;
  double overrun_probability = 0.0;
  TimeNs max_overrun = 0;
  double storm_probability = 0.0;
  int max_storm_wakeups = 0;
};

// Injected planner failures, drawn once per Planner::Solve call:
// failure_probability yields an immediate failure, timeout_probability a
// simulated deadline miss. Both surface as PlanFailure::kInjected results;
// the caller's degradation policy (keep the previous table, retry with
// exponential backoff) takes it from there.
struct PlannerFault {
  double failure_probability = 0.0;
  double timeout_probability = 0.0;
};

struct FaultPlan {
  // Scenario seed for every random draw. Two injectors built from equal
  // plans produce identical perturbation sequences.
  std::uint64_t seed = 1;

  std::vector<OverheadSpike> overhead_spikes;
  std::vector<TimerFault> timer_faults;
  std::vector<IpiFault> ipi_faults;
  std::vector<GuestFault> guest_faults;
  PlannerFault planner;

  bool empty() const {
    return overhead_spikes.empty() && timer_faults.empty() && ipi_faults.empty() &&
           guest_faults.empty() && planner.failure_probability <= 0.0 &&
           planner.timeout_probability <= 0.0;
  }
};

// The canonical chaos-matrix plan used by bench_ext_fault_matrix and the
// determinism tests: every machine-level fault class enabled, scaled by
// `intensity` in [0, 1]. Intensity 0 returns an empty plan.
FaultPlan ChaosPlan(std::uint64_t seed, double intensity);

}  // namespace tableau::faults

#endif  // SRC_FAULTS_FAULT_PLAN_H_
