// Property-based scenario fuzzing with shrinking.
//
// A ScenarioSpec is a small, fully serializable description of one randomized
// end-to-end run: scheduler, machine shape, VM mix (sizes, reservations,
// workloads), fault intensity, optional runtime replan, slip tolerance, and
// an optional scheduler mutant. Everything derives from the seed through the
// repo's deterministic Rng, so a spec replays byte-identically.
//
// RunCheckedScenario() builds the scenario through the real harness
// (BuildVmScenario), verifies every planned table with the TableVerifier,
// runs the machine with tracing on, and replays the full event trace through
// the differential oracle matching the scheduler — returning every violation
// found. Zero violations is the property the check suite asserts over
// thousands of seeds.
//
// When a violation does appear, Shrink() delta-debugs the spec: greedy,
// deterministic passes (drop a VM, shrink a VM, halve the duration, strip
// faults/replans/mutation knobs, remove a core) re-run the scenario and keep
// any candidate that still reproduces the same violation category, looping
// until no pass makes progress. The result is a minimal reproducer whose
// serialized form (FormatSpec) goes into tests/repro/ and replays through
// tableau_checkctl or the repro-corpus test.
#ifndef SRC_CHECK_SCENARIO_FUZZ_H_
#define SRC_CHECK_SCENARIO_FUZZ_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/check/mutants.h"
#include "src/common/time.h"
#include "src/schedulers/factory.h"

namespace tableau::check {

// Workload attached to every vCPU of a VM (src/workloads).
enum class WorkloadKind { kHog, kStress, kStressHeavy, kNoise, kPing };

const char* WorkloadKindName(WorkloadKind kind);
std::optional<WorkloadKind> WorkloadKindFromName(std::string_view name);

struct VmFuzzSpec {
  int vcpus = 1;
  double utilization = 0.25;  // Per-vCPU reservation.
  TimeNs latency_goal = 20 * kMillisecond;
  WorkloadKind workload = WorkloadKind::kHog;
  bool gang = false;
};

struct ScenarioSpec {
  std::uint64_t seed = 1;
  SchedKind scheduler = SchedKind::kTableau;
  bool capped = false;
  int guest_cpus = 2;
  int cores_per_socket = 2;
  TimeNs duration = 50 * kMillisecond;
  // ChaosPlan intensity in [0, 1]; 0 = fault-free.
  double fault_intensity = 0.0;
  std::uint64_t fault_seed = 1;
  // Injected planner failure probability (exercises ReplanController).
  double planner_failure = 0.0;
  // Non-zero: attempt a runtime replan (same requests) from this time on,
  // through ReplanController, until one installs. Tableau only.
  TimeNs replan_at = 0;
  // Dispatcher switch_slip_tolerance; 0 = kTimeNever (promote late).
  TimeNs slip_ns = 0;
  MutantKind mutant = MutantKind::kNone;
  int mutant_stride = 0;
  std::vector<VmFuzzSpec> vms;

  int TotalVcpus() const {
    int total = 0;
    for (const VmFuzzSpec& vm : vms) total += vm.vcpus;
    return total;
  }
};

// Text round-trip ("tableau-repro v1" header + key=value lines, one repeated
// vm= line per VM). ParseSpec returns nullopt on malformed input.
std::string FormatSpec(const ScenarioSpec& spec);
std::optional<ScenarioSpec> ParseSpec(const std::string& text);

// Draws a random spec from the seed. Internally retries a bounded number of
// attempt salts until FeasibleSpec() accepts, so the result always builds
// without tripping the harness's planner-success check; deterministic per
// seed.
ScenarioSpec GenerateSpec(std::uint64_t seed);

// True when the spec can be built by the harness: scheduler/cap constraints
// hold, reservations are mappable, and (for Tableau) a fault-free dry-run
// plan admits the VM set.
bool FeasibleSpec(const ScenarioSpec& spec);

struct CheckOutcome {
  std::vector<std::string> violations;
  std::uint64_t records = 0;  // Trace records replayed through the oracle.
};

// Builds, runs, and checks one scenario. Aborts only on harness-level
// invariant failures (infeasible spec); every checkable property violation
// comes back in the outcome instead.
CheckOutcome RunCheckedScenario(const ScenarioSpec& spec);

// Stable bucket for "the same bug": the leading non-numeric prefix of the
// first violation message. Empty when there are no violations.
std::string CategoryOf(const std::vector<std::string>& violations);

struct ShrinkResult {
  ScenarioSpec spec;
  int runs = 0;  // Scenario executions the shrink spent.
};

// Greedy deterministic delta-debugging: repeatedly applies the first
// shrinking pass that still reproduces `category` until none does.
ShrinkResult Shrink(const ScenarioSpec& spec, const std::string& category);

}  // namespace tableau::check

#endif  // SRC_CHECK_SCENARIO_FUZZ_H_
