// Differential scheduler oracles: small step-at-a-time reference models that
// replay a machine's event trace and re-check, event by event, that the
// production scheduler honored (a) the hypervisor dispatch state machine and
// (b) its own policy's enforceable guarantees.
//
// The oracles are deliberately *sound, not complete*: every check is a
// property any correct run must satisfy (with slack derived from the active
// FaultPlan — timers only ever fire late, by at most max_jitter +
// coalesce_quantum), so a reported divergence is always a real bug, while
// some policy deviations (e.g. unfair but legal picks) pass. The Tableau
// oracle is fully differential: it carries the installed tables and checks
// every first-level dispatch against an independent table lookup at the
// dispatch instant, every second-level dispatch against core-locality and
// cap eligibility, and every service interval against the slot end.
//
// Generic state-machine checks (all schedulers):
//  - dispatches only of runnable vCPUs, onto free CPUs, never concurrently
//    on two CPUs;
//  - wakeups only of blocked vCPUs; blocks/deschedules only of the vCPU
//    actually running on that CPU;
//  - monotone non-decreasing timestamps.
//
// Policy checks:
//  - per-dispatch service intervals never exceed the scheduler's decision
//    horizon (Credit timeslice, Credit2 max timeslice, CFS sched_latency,
//    RTDS budget, Tableau slot end) plus timer-fault slack;
//  - capped vCPUs never receive more than two refills' worth of service in
//    any aligned enforcement window (phase-agnostic deferrable-server
//    bound), again plus slack.
#ifndef SRC_CHECK_ORACLES_H_
#define SRC_CHECK_ORACLES_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/faults/fault_plan.h"
#include "src/hypervisor/trace.h"
#include "src/hypervisor/vcpu.h"
#include "src/schedulers/factory.h"
#include "src/table/scheduling_table.h"

namespace tableau::check {

struct OracleConfig {
  SchedulerSpec spec;
  int num_cpus = 0;
  // Per-vCPU parameters, indexed by vCPU id (the oracle derives caps and
  // RTDS reservations from these exactly as the schedulers do).
  std::vector<VcpuParams> params;
  // The run's fault plan; slack terms derive from it. Empty = zero slack.
  faults::FaultPlan fault_plan;
  // For Tableau: every installed table in installation order. Generation g
  // (1-based, as traced by kTableSwitch) maps to tables[g - 1].
  std::vector<std::shared_ptr<const SchedulingTable>> tables;
};

class SchedulerOracle {
 public:
  virtual ~SchedulerOracle() = default;

  // Feeds one trace record, in chronological order.
  void Consume(const TraceRecord& record);
  // Closes still-open service intervals at the run horizon and runs final
  // checks.
  void Finish(TimeNs end_time);

  const std::vector<std::string>& violations() const { return violations_; }
  std::uint64_t records_consumed() const { return records_; }

  // Registers a table installed after construction (runtime replan); its
  // generation is its 1-based position in the accumulated table list.
  void AddTable(std::shared_ptr<const SchedulingTable> table) {
    config_.tables.push_back(std::move(table));
  }

 protected:
  explicit SchedulerOracle(OracleConfig config);

  struct Interval {
    TimeNs start = 0;
    TimeNs end = 0;
    int cpu = -1;
    bool second_level = false;
  };

  // Policy hooks.
  virtual void OnDispatch(const TraceRecord& /*record*/) {}
  virtual void OnIntervalClosed(VcpuId /*vcpu*/, const Interval& /*interval*/) {}
  virtual void OnTableSwitch(const TraceRecord& /*record*/) {}

  void AddViolation(std::string message);
  // Latest a faulted timer can fire past its programmed time.
  TimeNs TimerSlack() const { return timer_slack_; }
  const VcpuParams& ParamsOf(VcpuId vcpu) const;

  OracleConfig config_;

 private:
  enum class State { kBlocked, kRunnable, kRunning };

  void CloseInterval(VcpuId vcpu, TimeNs end);

  std::vector<std::string> violations_;
  std::uint64_t records_ = 0;
  TimeNs last_time_ = 0;
  TimeNs timer_slack_ = 0;
  std::vector<State> state_;          // Indexed by vCPU id.
  std::vector<int> running_cpu_;      // Indexed by vCPU id; -1 if not running.
  std::vector<VcpuId> occupant_;      // Indexed by CPU; kIdleVcpu if free.
  std::vector<Interval> open_;        // Indexed by vCPU id (start < 0: none).
};

// Builds the oracle matching `config.spec.kind`.
std::unique_ptr<SchedulerOracle> MakeOracle(OracleConfig config);

// Shared helper for cap-style window accounting: accumulates per-vCPU
// service into aligned windows of `window` ns and reports the first window
// whose total exceeds `bound`.
class WindowedServiceCheck {
 public:
  WindowedServiceCheck(TimeNs window, TimeNs bound) : window_(window), bound_(bound) {}

  // Adds [start, end) of service; returns the index of the first violating
  // window, or -1.
  std::int64_t Add(TimeNs start, TimeNs end);
  TimeNs WindowTotal(std::int64_t index) const;
  TimeNs bound() const { return bound_; }

 private:
  TimeNs window_;
  TimeNs bound_;
  std::map<std::int64_t, TimeNs> totals_;
  std::int64_t reported_ = -1;
};

}  // namespace tableau::check

#endif  // SRC_CHECK_ORACLES_H_
