#include "src/check/table_verifier.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

namespace tableau::check {
namespace {

std::string Describe(const char* what, VcpuId vcpu, long long got, long long bound) {
  std::ostringstream out;
  out << what << " for vcpu " << vcpu << ": " << got << " vs bound " << bound;
  return out.str();
}

// Structural re-check from first principles: ordering, bounds, no per-core
// overlap, no idle-vCPU allocations, and (when coalescing applies) no
// sub-threshold survivors.
void CheckStructure(const SchedulingTable& table, const VerifyOptions& options,
                    std::vector<std::string>* violations) {
  const TimeNs length = table.length();
  if (length <= 0) {
    violations->push_back("table length is not positive");
    return;
  }
  if (options.expected_length != 0 && length != options.expected_length) {
    std::ostringstream out;
    out << "table length " << length << " != expected hyperperiod "
        << options.expected_length;
    violations->push_back(out.str());
  }
  for (int c = 0; c < table.num_cpus(); ++c) {
    const CpuTable& cpu = table.cpu(c);
    TimeNs prev_end = 0;
    for (std::size_t i = 0; i < cpu.allocations.size(); ++i) {
      const Allocation& alloc = cpu.allocations[i];
      std::ostringstream where;
      where << "cpu " << c << " allocation " << i << " [" << alloc.start << ", "
            << alloc.end << ") vcpu " << alloc.vcpu;
      if (alloc.vcpu == kIdleVcpu) {
        violations->push_back(where.str() + ": allocation for the idle vCPU");
      }
      if (alloc.start < 0 || alloc.end > length || alloc.start >= alloc.end) {
        violations->push_back(where.str() + ": out of bounds or empty");
        continue;
      }
      if (alloc.start < prev_end) {
        violations->push_back(where.str() + ": overlaps the previous allocation");
      }
      prev_end = alloc.end;
      if (options.coalesce_threshold > 0 &&
          alloc.end - alloc.start < options.coalesce_threshold) {
        violations->push_back(where.str() +
                              ": sub-threshold allocation survived coalescing");
      }
    }
  }
}

// The slice table must agree with the linear reference lookup everywhere.
// Exhaustive agreement is implied by agreement at every discontinuity, so
// sample each allocation edge (and one interior point) plus each gap.
void CheckSliceAgreement(const SchedulingTable& table,
                         std::vector<std::string>* violations) {
  const TimeNs length = table.length();
  for (int c = 0; c < table.num_cpus(); ++c) {
    std::vector<TimeNs> offsets = {0, length - 1};
    for (const Allocation& alloc : table.cpu(c).allocations) {
      offsets.push_back(alloc.start);
      offsets.push_back(alloc.start + (alloc.end - alloc.start) / 2);
      offsets.push_back(alloc.end - 1);
      if (alloc.end < length) {
        offsets.push_back(alloc.end);
      }
      if (alloc.start > 0) {
        offsets.push_back(alloc.start - 1);
      }
    }
    for (const TimeNs offset : offsets) {
      const LookupResult fast = table.Lookup(c, offset);
      const LookupResult slow = table.LookupLinear(c, offset);
      if (fast.vcpu != slow.vcpu || fast.interval_end != slow.interval_end) {
        std::ostringstream out;
        out << "cpu " << c << " offset " << offset << ": slice lookup (vcpu "
            << fast.vcpu << ", end " << fast.interval_end
            << ") disagrees with linear lookup (vcpu " << slow.vcpu << ", end "
            << slow.interval_end << ")";
        violations->push_back(out.str());
      }
    }
  }
}

// Collects every allocation of one vCPU across all cores, sorted by start.
std::vector<Allocation> IntervalsOf(const SchedulingTable& table, VcpuId vcpu) {
  std::vector<Allocation> intervals;
  for (int c = 0; c < table.num_cpus(); ++c) {
    for (const Allocation& alloc : table.cpu(c).allocations) {
      if (alloc.vcpu == vcpu) {
        intervals.push_back(alloc);
      }
    }
  }
  std::sort(intervals.begin(), intervals.end(),
            [](const Allocation& a, const Allocation& b) { return a.start < b.start; });
  return intervals;
}

// No vCPU may be allocated on two cores at the same instant (a vCPU is one
// thread of execution). Checked across the whole table, for every vCPU.
void CheckCrossCoreExclusion(const SchedulingTable& table,
                             std::vector<std::string>* violations) {
  struct Tagged {
    TimeNs start;
    TimeNs end;
    int cpu;
  };
  std::map<VcpuId, std::vector<Tagged>> by_vcpu;
  for (int c = 0; c < table.num_cpus(); ++c) {
    for (const Allocation& alloc : table.cpu(c).allocations) {
      by_vcpu[alloc.vcpu].push_back(Tagged{alloc.start, alloc.end, c});
    }
  }
  for (auto& [vcpu, intervals] : by_vcpu) {
    std::sort(intervals.begin(), intervals.end(),
              [](const Tagged& a, const Tagged& b) { return a.start < b.start; });
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      if (intervals[i].start < intervals[i - 1].end) {
        std::ostringstream out;
        out << "vcpu " << vcpu << " allocated concurrently on cpu "
            << intervals[i - 1].cpu << " and cpu " << intervals[i].cpu << " at time "
            << intervals[i].start;
        violations->push_back(out.str());
      }
    }
  }
}

// Supply received by the vCPU inside [window_start, window_end), from its
// sorted interval list.
TimeNs SupplyIn(const std::vector<Allocation>& intervals, TimeNs window_start,
                TimeNs window_end) {
  TimeNs supply = 0;
  for (const Allocation& alloc : intervals) {
    if (alloc.end <= window_start) {
      continue;
    }
    if (alloc.start >= window_end) {
      break;
    }
    supply += std::min(alloc.end, window_end) - std::max(alloc.start, window_start);
  }
  return supply;
}

// Longest cyclic gap in the vCPU's service across all cores.
TimeNs MaxGap(const std::vector<Allocation>& intervals, TimeNs length) {
  if (intervals.empty()) {
    return length;
  }
  TimeNs worst = 0;
  TimeNs covered_until = intervals.front().start;
  TimeNs first_start = intervals.front().start;
  for (const Allocation& alloc : intervals) {
    if (alloc.start > covered_until) {
      worst = std::max(worst, alloc.start - covered_until);
    }
    covered_until = std::max(covered_until, alloc.end);
  }
  // Wrap-around gap: from the last covered instant, through the table end,
  // to the first allocation of the next round.
  worst = std::max(worst, length - covered_until + first_start);
  return worst;
}

void CheckContract(const SchedulingTable& table, const VcpuContract& contract,
                   const VerifyOptions& options, std::vector<std::string>* violations) {
  const TimeNs length = table.length();
  const std::vector<Allocation> intervals = IntervalsOf(table, contract.vcpu);

  if (contract.dedicated) {
    TimeNs supply = 0;
    for (const Allocation& alloc : intervals) {
      supply += alloc.end - alloc.start;
    }
    if (supply != length) {
      violations->push_back(Describe("dedicated vcpu does not own a full core",
                                     contract.vcpu, supply, length));
    }
    return;
  }

  if (contract.period <= 0 || contract.cost <= 0) {
    std::ostringstream out;
    out << "vcpu " << contract.vcpu << ": malformed contract (C=" << contract.cost
        << ", T=" << contract.period << ")";
    violations->push_back(out.str());
    return;
  }
  if (length % contract.period != 0) {
    violations->push_back(Describe("period does not divide the table length",
                                   contract.vcpu, contract.period, length));
    return;
  }

  const TimeNs windows = length / contract.period;
  const TimeNs donated = std::max<TimeNs>(contract.donated_ns, 0);

  // Window supply: every aligned period window must carry the full cost,
  // less what coalescing provably donated away; and the donation accounting
  // must cover the summed shortfall exactly.
  TimeNs total_shortfall = 0;
  for (TimeNs k = 0; k < windows; ++k) {
    const TimeNs window_start = k * contract.period;
    const TimeNs supply = SupplyIn(intervals, window_start, window_start + contract.period);
    if (supply < contract.cost - donated) {
      std::ostringstream out;
      out << "vcpu " << contract.vcpu << " window " << k << " [" << window_start << ", "
          << window_start + contract.period << "): supply " << supply << " < C "
          << contract.cost << " - donated " << donated;
      violations->push_back(out.str());
    }
    total_shortfall += std::max<TimeNs>(0, contract.cost - supply);
  }
  if (total_shortfall > donated) {
    violations->push_back(Describe("summed window shortfall exceeds the donation account",
                                   contract.vcpu, total_shortfall, donated));
  }

  // Donation budget: coalescing removes sub-threshold slivers; a period
  // window's job fragments into at most two boundary slivers, so more than
  // 2 * threshold of donation per window means the planner shaved off whole
  // jobs, not slivers.
  if (options.coalesce_threshold > 0 &&
      donated > windows * 2 * options.coalesce_threshold) {
    violations->push_back(Describe("donation exceeds the coalescing sliver budget",
                                   contract.vcpu, donated,
                                   windows * 2 * options.coalesce_threshold));
  }

  // Blackout: 2(T - C) from the EDF supply-bound argument (paper Sec. 4),
  // plus slack for coalescing — a dropped sliver merges the gaps on both of
  // its sides, so the bound stretches by the donated time plus one
  // threshold-sized sliver per adjacent gap.
  const TimeNs blackout_bound = 2 * (contract.period - contract.cost) +
                                (donated > 0 ? donated + 2 * options.coalesce_threshold : 0);
  const TimeNs blackout = MaxGap(intervals, length);
  if (blackout > blackout_bound) {
    violations->push_back(
        Describe("blackout exceeds 2(T - C) plus coalescing slack", contract.vcpu,
                 blackout, blackout_bound));
  }

  // C=D split legality: the split flag must match the table, and each piece
  // must be long enough to be enforceable. Cross-core exclusion (checked
  // globally) covers the "one core at a time" half of the contract.
  const std::vector<int> cpus = table.CpusOf(contract.vcpu);
  if (contract.split && cpus.size() < 2) {
    violations->push_back(Describe("split vcpu has allocations on fewer than two cores",
                                   contract.vcpu, static_cast<long long>(cpus.size()), 2));
  }
  if (!contract.split && cpus.size() > 1) {
    violations->push_back(
        Describe("unsplit vcpu has allocations on more than one core", contract.vcpu,
                 static_cast<long long>(cpus.size()), 1));
  }
}

}  // namespace

std::vector<std::string> VerifyTable(const SchedulingTable& table,
                                     const std::vector<VcpuContract>& contracts,
                                     const VerifyOptions& options) {
  std::vector<std::string> violations;
  CheckStructure(table, options, &violations);
  if (!violations.empty()) {
    // Structure is broken; the contract checks below would chase ghosts.
    return violations;
  }
  CheckSliceAgreement(table, &violations);
  CheckCrossCoreExclusion(table, &violations);
  for (const VcpuContract& contract : contracts) {
    CheckContract(table, contract, options, &violations);
  }
  return violations;
}

std::vector<VcpuContract> ContractsOf(const PlanResult& plan) {
  std::vector<VcpuContract> contracts;
  contracts.reserve(plan.vcpus.size());
  for (const VcpuPlan& vcpu : plan.vcpus) {
    VcpuContract contract;
    contract.vcpu = vcpu.vcpu;
    contract.cost = vcpu.cost;
    contract.period = vcpu.period;
    contract.dedicated = vcpu.dedicated;
    contract.split = vcpu.split;
    contract.donated_ns = vcpu.donated_ns;
    contracts.push_back(contract);
  }
  return contracts;
}

std::vector<std::string> VerifyPlan(const PlanResult& plan, const PlannerConfig& config) {
  if (!plan.success) {
    return {"plan is not successful"};
  }
  VerifyOptions options;
  options.coalesce_threshold = config.coalesce_threshold;
  options.split_granularity = config.split_granularity;
  options.expected_length = config.hyperperiod;
  return VerifyTable(plan.table, ContractsOf(plan), options);
}

void InstallPlannerVerification() {
  SetPlanAuditHook([](const PlanResult& plan, const PlannerConfig& config) {
    const std::vector<std::string> violations = VerifyPlan(plan, config);
    if (violations.empty()) {
      return;
    }
    std::fprintf(stderr,
                 "TableVerifier: %zu reservation-contract violation(s) in a "
                 "planner-produced table (%s, %zu vcpus):\n",
                 violations.size(), PlanMethodName(plan.method), plan.vcpus.size());
    for (const std::string& violation : violations) {
      std::fprintf(stderr, "  - %s\n", violation.c_str());
    }
    std::abort();
  });
}

}  // namespace tableau::check
