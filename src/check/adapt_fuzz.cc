#include "src/check/adapt_fuzz.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "src/check/table_verifier.h"
#include "src/common/rng.h"
#include "src/fleet/host.h"

namespace tableau::check {
namespace {

std::uint64_t Mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a * 0x9e3779b97f4a7c15ULL + b + 0x632be59bd9b4e019ULL;
  x ^= x >> 29;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 32;
  return x;
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string FormatDemand(const std::vector<double>& demand) {
  std::ostringstream out;
  for (std::size_t i = 0; i < demand.size(); ++i) {
    if (i > 0) {
      out << ",";
    }
    if (demand[i] < 0) {
      out << "x";  // Explicit no-data window.
    } else {
      out << FormatDouble(demand[i]);
    }
  }
  return out.str();
}

bool ParseDemand(const std::string& text, std::vector<double>* demand) {
  demand->clear();
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (token == "x") {
      demand->push_back(-1.0);
      continue;
    }
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || value < 0) {
      return false;
    }
    demand->push_back(value);
  }
  return true;
}

}  // namespace

std::string FormatAdaptSpec(const AdaptScenarioSpec& spec) {
  std::ostringstream out;
  out << "tableau-adapt-repro v1\n";
  out << "seed=" << spec.seed << "\n";
  out << "num_cpus=" << spec.num_cpus << "\n";
  out << "cores_per_socket=" << spec.cores_per_socket << "\n";
  out << "slots_per_core=" << spec.slots_per_core << "\n";
  out << "window_ns=" << spec.window_ns << "\n";
  out << "windows=" << spec.windows << "\n";
  out << "min_utilization=" << FormatDouble(spec.min_utilization) << "\n";
  out << "max_utilization=" << FormatDouble(spec.max_utilization) << "\n";
  out << "predictor_history=" << spec.policy.predictor.history << "\n";
  out << "predictor_fit_window=" << spec.policy.predictor.fit_window << "\n";
  out << "predictor_horizon=" << spec.policy.predictor.horizon << "\n";
  out << "predictor_quantile=" << FormatDouble(spec.policy.predictor.quantile)
      << "\n";
  out << "headroom=" << FormatDouble(spec.policy.headroom) << "\n";
  out << "quantize=" << FormatDouble(spec.policy.quantize) << "\n";
  out << "grow_deadband=" << FormatDouble(spec.policy.grow_deadband) << "\n";
  out << "shrink_deadband=" << FormatDouble(spec.policy.shrink_deadband) << "\n";
  out << "cooldown_windows=" << spec.policy.cooldown_windows << "\n";
  out << "saturation_threshold="
      << FormatDouble(spec.policy.saturation_threshold) << "\n";
  out << "saturation_growth=" << FormatDouble(spec.policy.saturation_growth)
      << "\n";
  out << "floor_quantile=" << FormatDouble(spec.policy.floor_quantile) << "\n";
  for (const AdaptVmFuzzSpec& vm : spec.vms) {
    out << "vm=init:" << FormatDouble(vm.initial)
        << " latency_ns:" << vm.latency_goal
        << " demand:" << FormatDemand(vm.demand) << "\n";
  }
  return out.str();
}

std::optional<AdaptScenarioSpec> ParseAdaptSpec(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "tableau-adapt-repro v1") {
    return std::nullopt;
  }
  AdaptScenarioSpec spec;
  spec.vms.clear();
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return std::nullopt;
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "seed") {
      spec.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "num_cpus") {
      spec.num_cpus = std::atoi(value.c_str());
    } else if (key == "cores_per_socket") {
      spec.cores_per_socket = std::atoi(value.c_str());
    } else if (key == "slots_per_core") {
      spec.slots_per_core = std::atoi(value.c_str());
    } else if (key == "window_ns") {
      spec.window_ns = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "windows") {
      spec.windows = std::atoi(value.c_str());
    } else if (key == "min_utilization") {
      spec.min_utilization = std::strtod(value.c_str(), nullptr);
    } else if (key == "max_utilization") {
      spec.max_utilization = std::strtod(value.c_str(), nullptr);
    } else if (key == "predictor_history") {
      spec.policy.predictor.history = std::atoi(value.c_str());
    } else if (key == "predictor_fit_window") {
      spec.policy.predictor.fit_window = std::atoi(value.c_str());
    } else if (key == "predictor_horizon") {
      spec.policy.predictor.horizon = std::atoi(value.c_str());
    } else if (key == "predictor_quantile") {
      spec.policy.predictor.quantile = std::strtod(value.c_str(), nullptr);
    } else if (key == "headroom") {
      spec.policy.headroom = std::strtod(value.c_str(), nullptr);
    } else if (key == "quantize") {
      spec.policy.quantize = std::strtod(value.c_str(), nullptr);
    } else if (key == "grow_deadband") {
      spec.policy.grow_deadband = std::strtod(value.c_str(), nullptr);
    } else if (key == "shrink_deadband") {
      spec.policy.shrink_deadband = std::strtod(value.c_str(), nullptr);
    } else if (key == "cooldown_windows") {
      spec.policy.cooldown_windows = std::atoi(value.c_str());
    } else if (key == "saturation_threshold") {
      spec.policy.saturation_threshold = std::strtod(value.c_str(), nullptr);
    } else if (key == "saturation_growth") {
      spec.policy.saturation_growth = std::strtod(value.c_str(), nullptr);
    } else if (key == "floor_quantile") {
      spec.policy.floor_quantile = std::strtod(value.c_str(), nullptr);
    } else if (key == "vm") {
      AdaptVmFuzzSpec vm;
      std::istringstream fields(value);
      std::string field;
      bool have_init = false;
      bool have_demand = false;
      while (fields >> field) {
        const std::size_t colon = field.find(':');
        if (colon == std::string::npos) {
          return std::nullopt;
        }
        const std::string name = field.substr(0, colon);
        const std::string body = field.substr(colon + 1);
        if (name == "init") {
          vm.initial = std::strtod(body.c_str(), nullptr);
          have_init = true;
        } else if (name == "latency_ns") {
          vm.latency_goal = std::strtoll(body.c_str(), nullptr, 10);
        } else if (name == "demand") {
          if (!ParseDemand(body, &vm.demand)) {
            return std::nullopt;
          }
          have_demand = true;
        } else {
          return std::nullopt;
        }
      }
      if (!have_init || !have_demand) {
        return std::nullopt;
      }
      spec.vms.push_back(std::move(vm));
    } else {
      return std::nullopt;
    }
  }
  if (spec.vms.empty()) {
    return std::nullopt;
  }
  return spec;
}

namespace {

// Structural validity: the spec names a buildable host, a policy the
// controller's constructor accepts, and VMs whose initial reservations obey
// their own clamps. No planner consultation (that is FeasibleAdaptSpec).
bool AdaptShapeOk(const AdaptScenarioSpec& spec) {
  if (spec.num_cpus < 1 || spec.cores_per_socket < 1 ||
      spec.cores_per_socket > spec.num_cpus || spec.slots_per_core < 1 ||
      spec.window_ns <= 0 || spec.windows < 1 || spec.vms.empty()) {
    return false;
  }
  if (static_cast<int>(spec.vms.size()) >
      spec.num_cpus * spec.slots_per_core) {
    return false;
  }
  if (!(spec.min_utilization > 0) ||
      spec.min_utilization > spec.max_utilization ||
      spec.max_utilization > 1.0) {
    return false;
  }
  const adapt::PolicyConfig& policy = spec.policy;
  if (policy.headroom < 1.0 || !(policy.quantize > 0) ||
      policy.grow_deadband < 0 || policy.shrink_deadband < 0 ||
      policy.cooldown_windows < 0 || policy.saturation_growth < 1.0 ||
      policy.predictor.history < 1 || policy.predictor.fit_window < 2 ||
      policy.predictor.horizon < 0 || policy.predictor.quantile < 0 ||
      policy.predictor.quantile > 1 || policy.floor_quantile < 0 ||
      policy.floor_quantile > 1) {
    return false;
  }
  for (const AdaptVmFuzzSpec& vm : spec.vms) {
    if (vm.initial < spec.min_utilization ||
        vm.initial > spec.max_utilization || vm.latency_goal <= 0) {
      return false;
    }
  }
  return true;
}

fleet::HostConfig BuildHostConfig(const AdaptScenarioSpec& spec) {
  fleet::HostConfig config;
  config.num_cpus = spec.num_cpus;
  config.cores_per_socket = spec.cores_per_socket;
  config.slots_per_core = spec.slots_per_core;
  // The fuzz loop feeds the controller synthetic window views directly, so
  // no telemetry (and no engine time) is needed — only the planner runs.
  config.attach_telemetry = false;
  config.adaptive = true;
  config.adapt_policy = spec.policy;
  config.adapt_min_utilization = spec.min_utilization;
  config.adapt_max_utilization = spec.max_utilization;
  return config;
}

// The floor the controller promises: nearest-rank quantile over the last
// min(n, history) fed observations — recomputed independently from the raw
// demand trace, never from predictor state.
double ShadowFloor(const std::vector<double>& fed, int history, double q) {
  if (fed.empty()) {
    return 0;
  }
  const std::size_t n =
      std::min(fed.size(), static_cast<std::size_t>(history));
  std::vector<double> tail(fed.end() - static_cast<std::ptrdiff_t>(n),
                           fed.end());
  std::sort(tail.begin(), tail.end());
  int rank = static_cast<int>(std::ceil(q * static_cast<double>(n)));
  rank = std::clamp(rank, 1, static_cast<int>(n));
  return tail[static_cast<std::size_t>(rank - 1)];
}

}  // namespace

bool FeasibleAdaptSpec(const AdaptScenarioSpec& spec) {
  if (!AdaptShapeOk(spec)) {
    return false;
  }
  // Real admission dry-run: the host's sequential delta solves are the
  // system under test, so feasibility means "this host admits this VM set",
  // not an aggregate-utilization heuristic.
  fleet::Host host(BuildHostConfig(spec));
  for (const AdaptVmFuzzSpec& vm : spec.vms) {
    if (host.AdmitVm(vm.initial, vm.latency_goal) < 0) {
      return false;
    }
  }
  return true;
}

AdaptCheckOutcome RunAdaptScenario(const AdaptScenarioSpec& spec) {
  AdaptCheckOutcome outcome;
  if (!AdaptShapeOk(spec)) {
    outcome.violations.push_back("spec: malformed adapt scenario spec");
    return outcome;
  }

  fleet::Host host(BuildHostConfig(spec));
  adapt::AdaptiveController* controller = host.adaptive();
  std::vector<int> slots;
  for (std::size_t i = 0; i < spec.vms.size(); ++i) {
    const int slot = host.AdmitVm(spec.vms[i].initial, spec.vms[i].latency_goal);
    if (slot < 0) {
      // Correctly rejected at admission: nothing to drive. (A reproducer for
      // a since-fixed over-admission bug replays as clean this way.)
      return outcome;
    }
    slots.push_back(slot);
  }

  const PlannerConfig verify_config = host.planner_config();
  const adapt::PolicyConfig& policy = spec.policy;

  // Independent per-VM shadow of everything the properties need: the raw
  // data windows fed so far and the spacing since the last committed resize.
  struct Shadow {
    std::vector<double> fed;
    int data_since_commit = 0;
    bool committed_before = false;
  };
  std::vector<Shadow> shadows(spec.vms.size());

  struct PendingMeta {
    std::size_t vm = 0;
    double old_reservation = 0;
  };

  for (int w = 0; w < spec.windows; ++w) {
    const TimeNs now = static_cast<TimeNs>(w + 1) * spec.window_ns;
    std::vector<fleet::Host::ResizeRequest> pending;
    std::vector<PendingMeta> meta;
    for (std::size_t i = 0; i < spec.vms.size(); ++i) {
      const AdaptVmFuzzSpec& vm = spec.vms[i];
      const int slot = slots[i];
      const double demand =
          static_cast<std::size_t>(w) < vm.demand.size() ? vm.demand[w] : -1.0;
      const bool has_data = demand >= 0;
      Shadow& shadow = shadows[i];
      if (has_data) {
        shadow.fed.push_back(demand);
        ++shadow.data_since_commit;
      }
      const double old_reservation = controller->reservation(slot);
      const adapt::AdaptiveController::Decision decision =
          controller->ObserveWindow(slot, has_data, std::max(demand, 0.0),
                                    std::max(demand, 0.0));
      if (!has_data &&
          decision.action != adapt::AdaptiveController::Action::kHold) {
        outcome.violations.push_back(
            "nodata: w=" + std::to_string(w) + " vm " + std::to_string(i) +
            " resized on a window with no data");
        continue;
      }
      if (decision.action != adapt::AdaptiveController::Action::kHold) {
        pending.push_back(fleet::Host::ResizeRequest{slot, decision.target});
        meta.push_back(PendingMeta{i, old_reservation});
      }
    }
    if (pending.empty()) {
      continue;
    }
    const int installed = host.ResizeVms(pending, now);
    if (installed == 0) {
      // Backoff-suppressed or planner-rejected: previous table kept, the
      // controller cooled down — graceful degradation, not a violation.
      continue;
    }
    // (a) Every installed resize's table passes the TableVerifier.
    for (std::string& violation : VerifyPlan(host.plan(), verify_config)) {
      outcome.violations.push_back("verify: w=" + std::to_string(w) + " " +
                                   violation);
    }
    for (std::size_t j = 0; j < pending.size(); ++j) {
      const double next = pending[j].utilization;
      const double old = meta[j].old_reservation;
      Shadow& shadow = shadows[meta[j].vm];
      const std::string where =
          "w=" + std::to_string(w) + " vm " + std::to_string(meta[j].vm);
      outcome.resize_log.push_back("w=" + std::to_string(w) + " slot=" +
                                   std::to_string(pending[j].slot) + " " +
                                   FormatDouble(old) + "->" +
                                   FormatDouble(next));
      ++outcome.resizes;
      // (b) Hysteresis: deadbands around the live reservation, and at least
      // cooldown_windows + 1 data windows between commits per VM.
      if (shadow.committed_before &&
          shadow.data_since_commit < policy.cooldown_windows + 1) {
        outcome.violations.push_back(
            "cooldown: " + where + " committed after " +
            std::to_string(shadow.data_since_commit) + " data windows (< " +
            std::to_string(policy.cooldown_windows + 1) + ")");
      }
      if (next > old && next - old <= policy.grow_deadband - 1e-9) {
        outcome.violations.push_back("deadband: " + where + " grew " +
                                     FormatDouble(old) + "->" +
                                     FormatDouble(next) +
                                     " inside the grow deadband");
      }
      if (next < old) {
        if (old - next <= policy.shrink_deadband - 1e-9) {
          outcome.violations.push_back("deadband: " + where + " shrank " +
                                       FormatDouble(old) + "->" +
                                       FormatDouble(next) +
                                       " inside the shrink deadband");
        }
        // (c) Never below the demonstrated-demand floor (clamped: a floor
        // above max_utilization is capped by the tenant's own max).
        const double floor =
            std::min(ShadowFloor(shadow.fed, policy.predictor.history,
                                 policy.floor_quantile),
                     spec.max_utilization);
        if (next < floor - 1e-9) {
          outcome.violations.push_back(
              "floor: " + where + " shrank to " + FormatDouble(next) +
              " below the observed p" +
              std::to_string(static_cast<int>(policy.floor_quantile * 100)) +
              " demand " + FormatDouble(floor));
        }
      }
      if (next < spec.min_utilization - 1e-9 ||
          next > spec.max_utilization + 1e-9) {
        outcome.violations.push_back("clamp: " + where + " committed " +
                                     FormatDouble(next) + " outside [" +
                                     FormatDouble(spec.min_utilization) + ", " +
                                     FormatDouble(spec.max_utilization) + "]");
      }
      shadow.committed_before = true;
      shadow.data_since_commit = 0;
    }
  }
  return outcome;
}

std::string AdaptCategoryOf(const std::vector<std::string>& violations) {
  if (violations.empty()) {
    return "";
  }
  const std::string& first = violations.front();
  const std::size_t colon = first.find(':');
  if (colon == std::string::npos) {
    return first.substr(0, std::min<std::size_t>(16, first.size()));
  }
  return first.substr(0, colon);
}

namespace {

AdaptScenarioSpec DrawAdaptSpec(std::uint64_t seed, int attempt) {
  Rng rng(Mix(seed, static_cast<std::uint64_t>(attempt)));
  AdaptScenarioSpec spec;
  spec.seed = seed;
  spec.num_cpus = 1 << rng.UniformInt(1, 3);  // 2, 4, or 8.
  spec.cores_per_socket = spec.num_cpus <= 2 ? spec.num_cpus : spec.num_cpus / 2;
  spec.slots_per_core = static_cast<int>(rng.UniformInt(1, 2));
  spec.window_ns = 10 * kMillisecond;
  spec.windows = static_cast<int>(rng.UniformInt(8, 40));
  static constexpr double kQuantizeChoices[] = {1.0 / 64, 1.0 / 32, 1.0 / 16};
  spec.policy.quantize = kQuantizeChoices[rng.UniformInt(0, 2)];
  spec.policy.headroom = 1.0 + 0.1 * static_cast<double>(rng.UniformInt(0, 5));
  spec.policy.grow_deadband = 1.0 / 64;
  static constexpr double kShrinkChoices[] = {1.0 / 32, 1.0 / 16, 1.0 / 8};
  spec.policy.shrink_deadband = kShrinkChoices[rng.UniformInt(0, 2)];
  spec.policy.cooldown_windows = static_cast<int>(rng.UniformInt(1, 6));
  spec.min_utilization = 1.0 / 32;
  spec.max_utilization = 0.25 * static_cast<double>(rng.UniformInt(2, 4));
  static constexpr TimeNs kLatencyChoices[] = {10 * kMillisecond,
                                               20 * kMillisecond,
                                               50 * kMillisecond};
  const int max_vms =
      std::min(6, spec.num_cpus * spec.slots_per_core);
  const int num_vms = static_cast<int>(rng.UniformInt(1, max_vms));
  // Aggregate budget so the initial set admits and leaves growth headroom
  // (resize failures are still legal — kept-previous, not a violation).
  double budget = 0.6 * static_cast<double>(spec.num_cpus);
  for (int i = 0; i < num_vms; ++i) {
    AdaptVmFuzzSpec vm;
    vm.initial = spec.policy.quantize * static_cast<double>(rng.UniformInt(2, 8));
    vm.initial = std::clamp(vm.initial, spec.min_utilization,
                            std::min(spec.max_utilization, 0.5));
    if (budget - vm.initial < 0) {
      vm.initial = spec.min_utilization;
    }
    budget -= vm.initial;
    vm.latency_goal = kLatencyChoices[rng.UniformInt(0, 2)];
    // Bursty regime walk: a base level that occasionally jumps, per-window
    // jitter, saturation spikes, and explicit no-data (idle) windows.
    double base = 0.05 * static_cast<double>(rng.UniformInt(0, 10));
    vm.demand.reserve(static_cast<std::size_t>(spec.windows));
    for (int w = 0; w < spec.windows; ++w) {
      if (rng.UniformDouble() < 0.12) {
        base = 0.05 * static_cast<double>(rng.UniformInt(0, 10));
      }
      const double roll = rng.UniformDouble();
      double demand;
      if (roll < 0.15) {
        demand = -1.0;  // Idle window: no data.
      } else if (roll < 0.20) {
        demand = 0.9 + 0.1 * rng.UniformDouble();  // Saturation spike.
      } else {
        demand = std::clamp(base + 0.05 * (rng.UniformDouble() - 0.5), 0.0, 1.0);
      }
      vm.demand.push_back(demand);
    }
    spec.vms.push_back(std::move(vm));
  }
  return spec;
}

}  // namespace

AdaptScenarioSpec GenerateAdaptSpec(std::uint64_t seed) {
  for (int attempt = 0; attempt < 32; ++attempt) {
    AdaptScenarioSpec spec = DrawAdaptSpec(seed, attempt);
    if (FeasibleAdaptSpec(spec)) {
      return spec;
    }
  }
  // Trivially feasible fallback (should be unreachable in practice).
  AdaptScenarioSpec fallback;
  fallback.seed = seed;
  fallback.num_cpus = 2;
  fallback.cores_per_socket = 2;
  fallback.slots_per_core = 1;
  fallback.vms.push_back(AdaptVmFuzzSpec{});
  fallback.vms.back().demand.assign(
      static_cast<std::size_t>(fallback.windows), 0.25);
  return fallback;
}

namespace {

std::vector<AdaptScenarioSpec> AdaptShrinkCandidates(
    const AdaptScenarioSpec& spec) {
  std::vector<AdaptScenarioSpec> candidates;
  // Biggest reductions first: whole VMs, then the window trace, then
  // per-trace simplifications, then host size.
  if (spec.vms.size() > 1) {
    for (std::size_t i = 0; i < spec.vms.size(); ++i) {
      AdaptScenarioSpec candidate = spec;
      candidate.vms.erase(candidate.vms.begin() +
                          static_cast<std::ptrdiff_t>(i));
      candidates.push_back(std::move(candidate));
    }
  }
  if (spec.windows > 4) {
    for (const int windows : {spec.windows / 2, spec.windows - 1}) {
      AdaptScenarioSpec candidate = spec;
      candidate.windows = windows;
      for (AdaptVmFuzzSpec& vm : candidate.vms) {
        if (static_cast<int>(vm.demand.size()) > windows) {
          vm.demand.resize(static_cast<std::size_t>(windows));
        }
      }
      candidates.push_back(std::move(candidate));
    }
  }
  for (std::size_t i = 0; i < spec.vms.size(); ++i) {
    double sum = 0;
    int data = 0;
    for (const double d : spec.vms[i].demand) {
      if (d >= 0) {
        sum += d;
        ++data;
      }
    }
    const double mean = data > 0 ? sum / static_cast<double>(data) : 0.0;
    bool varied = false;
    bool has_gap = false;
    for (const double d : spec.vms[i].demand) {
      if (d >= 0 && std::abs(d - mean) > 1e-12) {
        varied = true;
      }
      if (d < 0) {
        has_gap = true;
      }
    }
    if (varied) {
      // Flatten the trace to its mean (keeps no-data markers in place).
      AdaptScenarioSpec candidate = spec;
      for (double& d : candidate.vms[i].demand) {
        if (d >= 0) {
          d = mean;
        }
      }
      candidates.push_back(std::move(candidate));
    }
    if (has_gap) {
      // Materialize the idle windows as mean demand.
      AdaptScenarioSpec candidate = spec;
      for (double& d : candidate.vms[i].demand) {
        if (d < 0) {
          d = mean;
        }
      }
      candidates.push_back(std::move(candidate));
    }
    {
      // Round the trace onto a coarse grid.
      AdaptScenarioSpec candidate = spec;
      bool changed = false;
      for (double& d : candidate.vms[i].demand) {
        if (d >= 0) {
          const double rounded = std::round(d * 64.0) / 64.0;
          if (std::abs(rounded - d) > 1e-12) {
            d = rounded;
            changed = true;
          }
        }
      }
      if (changed) {
        candidates.push_back(std::move(candidate));
      }
    }
  }
  if (spec.num_cpus > 2) {
    AdaptScenarioSpec candidate = spec;
    candidate.num_cpus = spec.num_cpus / 2;
    candidate.cores_per_socket =
        std::min(candidate.cores_per_socket, candidate.num_cpus);
    candidates.push_back(std::move(candidate));
  }
  return candidates;
}

}  // namespace

AdaptShrinkResult ShrinkAdaptSpec(const AdaptScenarioSpec& spec,
                                  const std::string& category) {
  AdaptShrinkResult result;
  result.spec = spec;
  if (category.empty()) {
    return result;
  }
  constexpr int kMaxRuns = 200;
  bool progress = true;
  while (progress && result.runs < kMaxRuns) {
    progress = false;
    for (const AdaptScenarioSpec& candidate : AdaptShrinkCandidates(result.spec)) {
      if (!FeasibleAdaptSpec(candidate)) {
        continue;
      }
      ++result.runs;
      const AdaptCheckOutcome outcome = RunAdaptScenario(candidate);
      if (AdaptCategoryOf(outcome.violations) == category) {
        result.spec = candidate;
        progress = true;
        break;
      }
      if (result.runs >= kMaxRuns) {
        break;
      }
    }
  }
  return result;
}

}  // namespace tableau::check
