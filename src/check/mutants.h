// Scheduler mutants: deliberately-buggy forwarding wrappers installed through
// the factory registry, used to prove the verification subsystem actually
// catches bugs (a checker that never fires is indistinguishable from one that
// checks nothing).
//
// A mutant wraps the real scheduler built for a SchedKind and corrupts every
// stride-th PickNext decision in a way that stays *legal* for the hypervisor
// dispatch state machine (the machine's own TABLEAU_CHECKs must not fire —
// the point is that only the oracles notice):
//
//  - kWrongVcpu: substitutes a different runnable, not-running vCPU for the
//    scheduler's pick. Caught by the Tableau oracle's differential table
//    lookup (the dispatched vCPU does not own the slot). Intended for
//    Tableau, whose table-driven first level keeps no per-pick runqueue
//    state; queue-based schedulers may get confused by a substituted pick.
//  - kOverrunSlice: extends the decision horizon by several milliseconds, so
//    the dispatched vCPU runs past its slot/slice end. Caught by every
//    oracle's interval-length bound.
#ifndef SRC_CHECK_MUTANTS_H_
#define SRC_CHECK_MUTANTS_H_

#include <optional>
#include <string_view>

#include "src/schedulers/factory.h"

namespace tableau::check {

enum class MutantKind { kNone, kWrongVcpu, kOverrunSlice };

// "none", "wrong_vcpu", "overrun_slice" (for repro serialization).
const char* MutantKindName(MutantKind kind);
std::optional<MutantKind> MutantKindFromName(std::string_view name);

// RAII: while alive, every scheduler the factory builds for `kind` is wrapped
// in a mutant corrupting every `stride`-th pick (stride < 1 reads as 1).
// kNone installs nothing. One mutation may be active per process at a time;
// not thread-safe (tests only).
class ScopedSchedulerMutation {
 public:
  ScopedSchedulerMutation(SchedKind kind, MutantKind mutant, int stride);
  ~ScopedSchedulerMutation();

  ScopedSchedulerMutation(const ScopedSchedulerMutation&) = delete;
  ScopedSchedulerMutation& operator=(const ScopedSchedulerMutation&) = delete;
};

}  // namespace tableau::check

#endif  // SRC_CHECK_MUTANTS_H_
