// Property-based fuzzing of the closed-loop adaptive reservation
// controller (src/adapt) driving a real fleet::Host through the planner's
// delta path, with shrinking reproducers.
//
// An AdaptScenarioSpec is a fully serializable description of one closed
// loop: host shape, controller policy, per-VM initial reservations and a
// per-window synthetic demand trace (bursty regimes, saturation spikes, and
// explicit no-data windows). RunAdaptScenario() admits the VMs into a real
// host, feeds the demand trace to the controller one window at a time at
// deterministic barrier times, applies every non-hold decision through
// Host::ResizeVms (one batched delta solve under ReplanController backoff),
// and checks the battery of properties:
//
//  (a) every installed resize's table passes the TableVerifier;
//  (b) hysteresis: committed resizes respect the deadbands and are at
//      least cooldown_windows + 1 data windows apart per VM;
//  (c) the controller never shrinks a VM below the independently recomputed
//      floor quantile of its observed demand window, and never leaves the
//      VM's [min, max] clamps;
//  (d) a no-data window never triggers a resize (idle VMs hold).
//
// Violations shrink through greedy deterministic delta-debugging passes to
// a minimal reproducer ("tableau-adapt-repro v1" text) for tests/repro/adapt/.
#ifndef SRC_CHECK_ADAPT_FUZZ_H_
#define SRC_CHECK_ADAPT_FUZZ_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/adapt/controller.h"
#include "src/common/time.h"

namespace tableau::check {

struct AdaptVmFuzzSpec {
  double initial = 0.25;
  TimeNs latency_goal = 20 * kMillisecond;
  // Observed demand fraction per window; a negative value encodes an
  // explicit no-data window (the VM was idle).
  std::vector<double> demand;
};

struct AdaptScenarioSpec {
  std::uint64_t seed = 1;
  int num_cpus = 4;
  int cores_per_socket = 2;
  int slots_per_core = 2;
  TimeNs window_ns = 10 * kMillisecond;
  int windows = 16;
  // Host-wide resize clamps and the controller policy under test.
  double min_utilization = 1.0 / 32;
  double max_utilization = 1.0;
  adapt::PolicyConfig policy;
  std::vector<AdaptVmFuzzSpec> vms;
};

// Text round-trip ("tableau-adapt-repro v1" header + key=value lines, one
// repeated vm= line per VM). ParseAdaptSpec returns nullopt on malformed
// input.
std::string FormatAdaptSpec(const AdaptScenarioSpec& spec);
std::optional<AdaptScenarioSpec> ParseAdaptSpec(const std::string& text);

// Draws a random spec from the seed, retrying a bounded number of attempt
// salts until the initial VM set actually admits on the host (deterministic
// per seed).
AdaptScenarioSpec GenerateAdaptSpec(std::uint64_t seed);

// True when every VM of the spec admits into a freshly built host.
bool FeasibleAdaptSpec(const AdaptScenarioSpec& spec);

struct AdaptCheckOutcome {
  std::vector<std::string> violations;
  // One line per installed resize ("w=<window> slot=<s> <old>-><new>") —
  // the determinism fingerprint of the control loop.
  std::vector<std::string> resize_log;
  int resizes = 0;
};

// Builds, runs, and checks one closed-loop scenario.
AdaptCheckOutcome RunAdaptScenario(const AdaptScenarioSpec& spec);

// Stable bucket for "the same bug": the leading prefix of the first
// violation message up to its first ':'. Empty when there are none.
std::string AdaptCategoryOf(const std::vector<std::string>& violations);

struct AdaptShrinkResult {
  AdaptScenarioSpec spec;
  int runs = 0;
};

// Greedy deterministic delta-debugging: drop VMs, truncate the window
// trace, flatten demand to its mean, materialize no-data windows — keeping
// any pass that still reproduces `category`.
AdaptShrinkResult ShrinkAdaptSpec(const AdaptScenarioSpec& spec,
                                  const std::string& category);

}  // namespace tableau::check

#endif  // SRC_CHECK_ADAPT_FUZZ_H_
