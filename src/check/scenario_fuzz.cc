#include "src/check/scenario_fuzz.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>
#include <utility>

#include "src/check/oracles.h"
#include "src/check/table_verifier.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/core/replan.h"
#include "src/faults/fault_plan.h"
#include "src/harness/scenario.h"
#include "src/rt/hyperperiod.h"
#include "src/workloads/guest.h"
#include "src/workloads/ping.h"
#include "src/workloads/stress.h"

namespace tableau::check {
namespace {

std::uint64_t Mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a * 0x9e3779b97f4a7c15ULL + b + 0x632be59bd9b4e019ULL;
  x ^= x >> 29;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 32;
  return x;
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kHog:
      return "hog";
    case WorkloadKind::kStress:
      return "stress";
    case WorkloadKind::kStressHeavy:
      return "stress_heavy";
    case WorkloadKind::kNoise:
      return "noise";
    case WorkloadKind::kPing:
      return "ping";
  }
  return "?";
}

std::optional<WorkloadKind> WorkloadKindFromName(std::string_view name) {
  for (WorkloadKind kind : {WorkloadKind::kHog, WorkloadKind::kStress,
                            WorkloadKind::kStressHeavy, WorkloadKind::kNoise,
                            WorkloadKind::kPing}) {
    if (name == WorkloadKindName(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

std::string FormatSpec(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << "tableau-repro v1\n";
  out << "seed=" << spec.seed << "\n";
  out << "scheduler=" << SchedKindName(spec.scheduler) << "\n";
  out << "capped=" << (spec.capped ? 1 : 0) << "\n";
  out << "guest_cpus=" << spec.guest_cpus << "\n";
  out << "cores_per_socket=" << spec.cores_per_socket << "\n";
  out << "duration_ns=" << spec.duration << "\n";
  out << "fault_intensity=" << FormatDouble(spec.fault_intensity) << "\n";
  out << "fault_seed=" << spec.fault_seed << "\n";
  out << "planner_failure=" << FormatDouble(spec.planner_failure) << "\n";
  out << "replan_at_ns=" << spec.replan_at << "\n";
  out << "slip_ns=" << spec.slip_ns << "\n";
  out << "mutant=" << MutantKindName(spec.mutant) << "\n";
  out << "mutant_stride=" << spec.mutant_stride << "\n";
  for (const VmFuzzSpec& vm : spec.vms) {
    out << "vm=vcpus:" << vm.vcpus << " util:" << FormatDouble(vm.utilization)
        << " latency_ns:" << vm.latency_goal
        << " workload:" << WorkloadKindName(vm.workload)
        << " gang:" << (vm.gang ? 1 : 0) << "\n";
  }
  return out.str();
}

std::optional<ScenarioSpec> ParseSpec(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "tableau-repro v1") {
    return std::nullopt;
  }
  ScenarioSpec spec;
  spec.vms.clear();
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return std::nullopt;
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "seed") {
      spec.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "scheduler") {
      const auto kind = SchedKindFromName(value);
      if (!kind) return std::nullopt;
      spec.scheduler = *kind;
    } else if (key == "capped") {
      spec.capped = value == "1";
    } else if (key == "guest_cpus") {
      spec.guest_cpus = std::atoi(value.c_str());
    } else if (key == "cores_per_socket") {
      spec.cores_per_socket = std::atoi(value.c_str());
    } else if (key == "duration_ns") {
      spec.duration = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "fault_intensity") {
      spec.fault_intensity = std::strtod(value.c_str(), nullptr);
    } else if (key == "fault_seed") {
      spec.fault_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "planner_failure") {
      spec.planner_failure = std::strtod(value.c_str(), nullptr);
    } else if (key == "replan_at_ns") {
      spec.replan_at = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "slip_ns") {
      spec.slip_ns = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "mutant") {
      const auto kind = MutantKindFromName(value);
      if (!kind) return std::nullopt;
      spec.mutant = *kind;
    } else if (key == "mutant_stride") {
      spec.mutant_stride = std::atoi(value.c_str());
    } else if (key == "vm") {
      VmFuzzSpec vm;
      char workload[32] = {0};
      int gang = 0;
      long long latency = 0;
      if (std::sscanf(value.c_str(),
                      "vcpus:%d util:%lf latency_ns:%lld workload:%31s gang:%d",
                      &vm.vcpus, &vm.utilization, &latency, workload,
                      &gang) != 5) {
        return std::nullopt;
      }
      vm.latency_goal = static_cast<TimeNs>(latency);
      const auto kind = WorkloadKindFromName(workload);
      if (!kind) return std::nullopt;
      vm.workload = *kind;
      vm.gang = gang != 0;
      spec.vms.push_back(vm);
    } else {
      return std::nullopt;
    }
  }
  if (spec.vms.empty()) {
    return std::nullopt;
  }
  return spec;
}

namespace {

// Structural validity: the spec names a buildable machine and a scheduler
// configuration the factory accepts. Does not consult the planner.
bool SpecShapeOk(const ScenarioSpec& spec) {
  if (spec.guest_cpus < 1 || spec.cores_per_socket < 1 ||
      spec.cores_per_socket > spec.guest_cpus || spec.duration <= 0 ||
      spec.vms.empty()) {
    return false;
  }
  if (spec.scheduler == SchedKind::kCredit2 && spec.capped) {
    return false;
  }
  if (spec.scheduler == SchedKind::kRtds && !spec.capped) {
    return false;
  }
  const bool needs_mapping = spec.scheduler == SchedKind::kRtds ||
                             spec.scheduler == SchedKind::kTableau;
  for (const VmFuzzSpec& vm : spec.vms) {
    if (vm.vcpus < 1 || vm.utilization <= 0.0 || vm.latency_goal <= 0) {
      return false;
    }
    if (needs_mapping && vm.utilization < 1.0) {
      VcpuRequest request;
      request.vcpu = 0;
      request.utilization = vm.utilization;
      request.latency_goal = vm.latency_goal;
      if (!MapRequestToTask(request).has_value()) {
        return false;
      }
    }
  }
  return true;
}

// Fault-free dry-run plan: the harness TABLEAU_CHECKs planner success, so
// only admitted VM sets may reach BuildVmScenario. A rejection here is the
// planner doing its job (e.g. over-utilization, sub-threshold budgets), not
// a property violation.
bool PlanAdmits(const ScenarioSpec& spec) {
  if (spec.scheduler != SchedKind::kTableau) {
    return true;
  }
  PlannerConfig config;
  config.num_cpus = spec.guest_cpus;
  config.cores_per_socket = spec.cores_per_socket;
  const Planner planner(config);
  std::vector<VcpuRequest> requests;
  VcpuId next = 0;
  for (const VmFuzzSpec& vm : spec.vms) {
    for (int i = 0; i < vm.vcpus; ++i) {
      requests.push_back(VcpuRequest{next++, vm.utilization, vm.latency_goal});
    }
  }
  return planner.Solve(PlanRequest::Full(std::move(requests))).success;
}

}  // namespace

bool FeasibleSpec(const ScenarioSpec& spec) {
  return SpecShapeOk(spec) && PlanAdmits(spec);
}

namespace {

ScenarioSpec DrawSpec(std::uint64_t seed, int attempt) {
  Rng rng(Mix(seed, static_cast<std::uint64_t>(attempt)));
  ScenarioSpec spec;
  spec.seed = seed;
  spec.scheduler = kAllSchedKinds[rng.UniformInt(0, 4)];
  switch (spec.scheduler) {
    case SchedKind::kCredit2:
      spec.capped = false;
      break;
    case SchedKind::kRtds:
      spec.capped = true;
      break;
    default:
      spec.capped = rng.UniformDouble() < 0.5;
      break;
  }
  spec.guest_cpus = static_cast<int>(rng.UniformInt(1, 4));
  spec.cores_per_socket =
      spec.guest_cpus <= 2 ? spec.guest_cpus : (spec.guest_cpus + 1) / 2;
  spec.duration = rng.UniformInt(4, 12) * 5 * kMillisecond;
  spec.fault_seed = Mix(seed, 0x5eed);
  if (rng.UniformDouble() < 0.5) {
    spec.fault_intensity = 0.05 * rng.UniformInt(1, 10);
  }
  const bool tableau = spec.scheduler == SchedKind::kTableau;
  if (tableau && rng.UniformDouble() < 0.35) {
    spec.replan_at = spec.duration / 2;
    if (rng.UniformDouble() < 0.5) {
      spec.planner_failure = 0.25;
    }
  }
  if (tableau && rng.UniformDouble() < 0.35) {
    spec.slip_ns = 200 * kMicrosecond * rng.UniformInt(1, 5);
  }
  static constexpr TimeNs kLatencyChoices[] = {
      5 * kMillisecond, 10 * kMillisecond, 20 * kMillisecond, 40 * kMillisecond,
      80 * kMillisecond};
  const int max_vms = std::min(6, 2 * spec.guest_cpus);
  const int num_vms = static_cast<int>(rng.UniformInt(1, max_vms));
  for (int i = 0; i < num_vms; ++i) {
    VmFuzzSpec vm;
    vm.vcpus = rng.UniformDouble() < 0.25 ? 2 : 1;
    vm.gang = vm.vcpus > 1 && rng.UniformDouble() < 0.5;
    vm.utilization = 0.05 * rng.UniformInt(1, 8);
    vm.latency_goal = kLatencyChoices[rng.UniformInt(0, 4)];
    vm.workload = static_cast<WorkloadKind>(rng.UniformInt(0, 4));
    spec.vms.push_back(vm);
  }
  return spec;
}

}  // namespace

ScenarioSpec GenerateSpec(std::uint64_t seed) {
  for (int attempt = 0; attempt < 32; ++attempt) {
    ScenarioSpec spec = DrawSpec(seed, attempt);
    if (FeasibleSpec(spec)) {
      return spec;
    }
  }
  // Trivially feasible fallback (should be unreachable in practice).
  ScenarioSpec fallback;
  fallback.seed = seed;
  fallback.scheduler = SchedKind::kCredit;
  fallback.guest_cpus = 1;
  fallback.cores_per_socket = 1;
  fallback.duration = 20 * kMillisecond;
  fallback.vms.push_back(VmFuzzSpec{});
  return fallback;
}

CheckOutcome RunCheckedScenario(const ScenarioSpec& spec) {
  CheckOutcome outcome;
  if (!SpecShapeOk(spec)) {
    outcome.violations.push_back("spec: malformed scenario spec");
    return outcome;
  }
  if (!PlanAdmits(spec)) {
    // Correctly rejected at admission: nothing runs, nothing to check. (A
    // reproducer for a since-fixed planner bug replays as clean this way.)
    return outcome;
  }

  std::optional<ScopedSchedulerMutation> mutation;
  if (spec.mutant != MutantKind::kNone) {
    mutation.emplace(spec.scheduler, spec.mutant, spec.mutant_stride);
  }

  ScenarioConfig config;
  config.scheduler = spec.scheduler;
  config.capped = spec.capped;
  config.guest_cpus = spec.guest_cpus;
  config.cores_per_socket = spec.cores_per_socket;
  config.fault_plan = faults::ChaosPlan(spec.fault_seed, spec.fault_intensity);
  config.fault_plan.seed = spec.fault_seed;
  config.fault_plan.planner.failure_probability = spec.planner_failure;
  config.switch_slip_tolerance = spec.slip_ns == 0 ? kTimeNever : spec.slip_ns;

  std::vector<VmSpec> vms;
  for (const VmFuzzSpec& vm : spec.vms) {
    VmSpec built;
    built.vcpus = vm.vcpus;
    built.utilization_each = vm.utilization;
    built.latency_goal = vm.latency_goal;
    built.gang = vm.gang;
    vms.push_back(built);
  }
  Scenario scenario = BuildVmScenario(config, vms);

  PlannerConfig verify_config;
  verify_config.num_cpus = spec.guest_cpus;
  verify_config.cores_per_socket = spec.cores_per_socket;
  if (scenario.tableau != nullptr) {
    for (std::string& violation : VerifyPlan(scenario.plan, verify_config)) {
      outcome.violations.push_back("plan: " + violation);
    }
  }

  // Per-vCPU workloads (the fuzz_test mix). Instances live past machine run.
  std::vector<std::unique_ptr<CpuHogWorkload>> hogs;
  std::vector<std::unique_ptr<StressIoWorkload>> stress;
  std::vector<std::unique_ptr<WorkQueueGuest>> guests;
  std::vector<std::unique_ptr<SystemNoiseWorkload>> noise;
  std::vector<std::unique_ptr<PingTraffic>> pings;
  for (std::size_t i = 0; i < scenario.vcpus.size(); ++i) {
    Vcpu* vcpu = scenario.vcpus[i];
    const VmFuzzSpec& vm = spec.vms[static_cast<std::size_t>(scenario.vm_of[i])];
    const std::uint64_t workload_seed = spec.seed * 1000 + i;
    switch (vm.workload) {
      case WorkloadKind::kHog:
        hogs.push_back(
            std::make_unique<CpuHogWorkload>(scenario.machine, vcpu));
        hogs.back()->Start(0);
        break;
      case WorkloadKind::kStress:
      case WorkloadKind::kStressHeavy: {
        StressIoWorkload::Config stress_config;
        if (vm.workload == WorkloadKind::kStressHeavy) {
          stress_config = StressIoWorkload::Config::Heavy();
        }
        stress_config.seed = workload_seed;
        stress.push_back(std::make_unique<StressIoWorkload>(
            scenario.machine, vcpu, stress_config));
        stress.back()->Start(0);
        break;
      }
      case WorkloadKind::kNoise: {
        guests.push_back(
            std::make_unique<WorkQueueGuest>(scenario.machine, vcpu));
        SystemNoiseWorkload::Config noise_config;
        noise_config.seed = workload_seed;
        noise.push_back(std::make_unique<SystemNoiseWorkload>(
            scenario.machine, guests.back().get(), noise_config));
        noise.back()->Start(0);
        break;
      }
      case WorkloadKind::kPing: {
        guests.push_back(
            std::make_unique<WorkQueueGuest>(scenario.machine, vcpu));
        PingTraffic::Config ping_config;
        ping_config.threads = 2;
        ping_config.pings_per_thread = 200;
        ping_config.max_spacing = 8 * kMillisecond;
        ping_config.seed = workload_seed;
        pings.push_back(std::make_unique<PingTraffic>(
            scenario.machine, guests.back().get(), ping_config));
        pings.back()->Start(0);
        break;
      }
    }
  }

  OracleConfig oracle_config;
  oracle_config.spec.kind = spec.scheduler;
  oracle_config.spec.capped = spec.capped;
  oracle_config.spec.credit_timeslice = config.credit_timeslice;
  oracle_config.spec.switch_slip_tolerance = config.switch_slip_tolerance;
  oracle_config.num_cpus = spec.guest_cpus;
  for (const Vcpu* vcpu : scenario.vcpus) {
    if (oracle_config.params.size() <= static_cast<std::size_t>(vcpu->id())) {
      oracle_config.params.resize(static_cast<std::size_t>(vcpu->id()) + 1);
    }
    oracle_config.params[static_cast<std::size_t>(vcpu->id())] = vcpu->params();
  }
  oracle_config.fault_plan = config.fault_plan;
  if (scenario.tableau != nullptr) {
    oracle_config.tables.push_back(
        std::make_shared<SchedulingTable>(scenario.plan.table));
  }
  std::unique_ptr<SchedulerOracle> oracle = MakeOracle(std::move(oracle_config));

  scenario.machine->trace().set_enabled(true);
  scenario.machine->Start();

  std::optional<Planner> replanner;
  std::optional<ReplanController> controller;
  bool replanned = spec.replan_at <= 0 || scenario.tableau == nullptr;
  const TimeNs chunk = 5 * kMillisecond;
  TimeNs now = 0;
  std::uint64_t consumed_total = 0;
  while (now < spec.duration) {
    const TimeNs step = std::min(chunk, spec.duration - now);
    scenario.machine->RunFor(step);
    now += step;

    const TraceBuffer& trace = scenario.machine->trace();
    if (trace.total_recorded() - consumed_total > trace.size()) {
      outcome.violations.push_back(
          "trace: ring overflow mid-chunk; oracle would miss records");
    }
    trace.ForEach([&](const TraceRecord& record) { oracle->Consume(record); });
    consumed_total = trace.total_recorded();
    scenario.machine->trace().Clear();

    if (!replanned && now >= spec.replan_at) {
      if (!controller) {
        PlannerConfig replan_config = verify_config;
        replan_config.fault_injector = scenario.injector;
        replan_config.metrics = &scenario.machine->metrics();
        replanner.emplace(replan_config);
        controller.emplace(&*replanner, ReplanController::Config{});
        controller->AttachMetrics(&scenario.machine->metrics());
      }
      ReplanController::Outcome replan =
          controller->TryReplan(PlanRequest::Full(scenario.plan.requests), now);
      if (replan.installed) {
        for (std::string& violation : VerifyPlan(replan.plan, verify_config)) {
          outcome.violations.push_back("replan: " + violation);
        }
        auto table = std::make_shared<SchedulingTable>(replan.plan.table);
        oracle->AddTable(table);
        scenario.tableau->PushTable(std::move(table));
        replanned = true;
      }
    }
  }
  oracle->Finish(now);

  for (const std::string& violation : oracle->violations()) {
    outcome.violations.push_back(violation);
  }
  outcome.records = oracle->records_consumed();
  return outcome;
}

std::string CategoryOf(const std::vector<std::string>& violations) {
  if (violations.empty()) {
    return "";
  }
  const std::string& first = violations.front();
  std::size_t cut = 0;
  while (cut < first.size() && !(first[cut] >= '0' && first[cut] <= '9')) {
    ++cut;
  }
  std::string category = first.substr(0, cut);
  while (!category.empty() && category.back() == ' ') {
    category.pop_back();
  }
  if (category.empty()) {
    category = first.substr(0, std::min<std::size_t>(16, first.size()));
  }
  return category;
}

namespace {

std::vector<ScenarioSpec> ShrinkCandidates(const ScenarioSpec& spec) {
  std::vector<ScenarioSpec> candidates;
  // Biggest reductions first: whole VMs, then per-VM simplifications, then
  // knobs, then time and space.
  if (spec.vms.size() > 1) {
    for (std::size_t i = 0; i < spec.vms.size(); ++i) {
      ScenarioSpec candidate = spec;
      candidate.vms.erase(candidate.vms.begin() + static_cast<std::ptrdiff_t>(i));
      candidates.push_back(std::move(candidate));
    }
  }
  for (std::size_t i = 0; i < spec.vms.size(); ++i) {
    if (spec.vms[i].vcpus > 1) {
      ScenarioSpec candidate = spec;
      candidate.vms[i].vcpus = 1;
      candidate.vms[i].gang = false;
      candidates.push_back(std::move(candidate));
    }
    if (spec.vms[i].workload != WorkloadKind::kHog) {
      ScenarioSpec candidate = spec;
      candidate.vms[i].workload = WorkloadKind::kHog;
      candidates.push_back(std::move(candidate));
    }
    if (spec.vms[i].gang) {
      ScenarioSpec candidate = spec;
      candidate.vms[i].gang = false;
      candidates.push_back(std::move(candidate));
    }
  }
  if (spec.fault_intensity > 0.0) {
    ScenarioSpec candidate = spec;
    candidate.fault_intensity = 0.0;
    candidates.push_back(std::move(candidate));
  }
  if (spec.planner_failure > 0.0) {
    ScenarioSpec candidate = spec;
    candidate.planner_failure = 0.0;
    candidates.push_back(std::move(candidate));
  }
  if (spec.replan_at > 0) {
    ScenarioSpec candidate = spec;
    candidate.replan_at = 0;
    candidate.planner_failure = 0.0;
    candidates.push_back(std::move(candidate));
  }
  if (spec.slip_ns > 0) {
    ScenarioSpec candidate = spec;
    candidate.slip_ns = 0;
    candidates.push_back(std::move(candidate));
  }
  if (spec.duration > 10 * kMillisecond) {
    ScenarioSpec candidate = spec;
    candidate.duration = spec.duration / 2;
    candidates.push_back(std::move(candidate));
  }
  if (spec.guest_cpus > 1) {
    ScenarioSpec candidate = spec;
    candidate.guest_cpus = spec.guest_cpus - 1;
    candidate.cores_per_socket =
        std::min(candidate.cores_per_socket, candidate.guest_cpus);
    candidates.push_back(std::move(candidate));
  }
  return candidates;
}

}  // namespace

ShrinkResult Shrink(const ScenarioSpec& spec, const std::string& category) {
  ShrinkResult result;
  result.spec = spec;
  if (category.empty()) {
    return result;
  }
  constexpr int kMaxRuns = 200;
  bool progress = true;
  while (progress && result.runs < kMaxRuns) {
    progress = false;
    for (const ScenarioSpec& candidate : ShrinkCandidates(result.spec)) {
      if (!FeasibleSpec(candidate)) {
        continue;
      }
      ++result.runs;
      const CheckOutcome outcome = RunCheckedScenario(candidate);
      if (CategoryOf(outcome.violations) == category) {
        result.spec = candidate;
        progress = true;
        break;
      }
      if (result.runs >= kMaxRuns) {
        break;
      }
    }
  }
  return result;
}

}  // namespace tableau::check
