#include "src/check/mutants.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/hypervisor/scheduler.h"

namespace tableau::check {
namespace {

// Forwards every hook to the wrapped scheduler and corrupts every stride-th
// PickNext decision. The corruption keeps the machine's dispatch invariants
// intact (runnable vCPU, not running elsewhere, until > now): only the
// oracles can tell the difference.
class MutantScheduler : public VcpuScheduler {
 public:
  MutantScheduler(std::unique_ptr<VcpuScheduler> inner, MutantKind kind, int stride)
      : inner_(std::move(inner)), kind_(kind), stride_(stride < 1 ? 1 : stride) {}

  std::string Name() const override { return inner_->Name() + "+mutant"; }

  void Attach(Machine* machine) override {
    machine_ = machine;
    inner_->Attach(machine);
  }

  void AddVcpu(Vcpu* vcpu) override {
    vcpus_.push_back(vcpu);
    inner_->AddVcpu(vcpu);
  }

  Decision PickNext(CpuId cpu) override {
    Decision decision = inner_->PickNext(cpu);
    ++picks_;
    if (picks_ % static_cast<std::uint64_t>(stride_) != 0 ||
        decision.vcpu == kIdleVcpu) {
      return decision;
    }
    switch (kind_) {
      case MutantKind::kNone:
        break;
      case MutantKind::kWrongVcpu: {
        // Substitute any other runnable, not-running vCPU; keep the horizon.
        const std::size_t n = vcpus_.size();
        for (std::size_t i = 0; i < n; ++i) {
          Vcpu* candidate = vcpus_[(rotate_ + i) % n];
          if (candidate->id() != decision.vcpu && candidate->runnable() &&
              candidate->running_on() == kNoCpu) {
            rotate_ = (rotate_ + i + 1) % n;
            decision.vcpu = candidate->id();
            break;
          }
        }
        break;
      }
      case MutantKind::kOverrunSlice:
        if (decision.until != kTimeNever) {
          decision.until += 5 * kMillisecond;
        }
        break;
    }
    return decision;
  }

  void OnWakeup(Vcpu* vcpu) override { inner_->OnWakeup(vcpu); }
  void OnBlock(Vcpu* vcpu, CpuId cpu) override { inner_->OnBlock(vcpu, cpu); }
  void OnDeschedule(Vcpu* vcpu, CpuId cpu, DeschedReason reason) override {
    inner_->OnDeschedule(vcpu, cpu, reason);
  }
  void OnServiceAccrued(Vcpu* vcpu, CpuId cpu, TimeNs amount) override {
    inner_->OnServiceAccrued(vcpu, cpu, amount);
  }
  void Start() override { inner_->Start(); }

 private:
  std::unique_ptr<VcpuScheduler> inner_;
  const MutantKind kind_;
  const int stride_;
  std::uint64_t picks_ = 0;
  std::size_t rotate_ = 0;
  std::vector<Vcpu*> vcpus_;
};

struct MutationState {
  SchedKind kind = SchedKind::kTableau;
  MutantKind mutant = MutantKind::kNone;
  int stride = 1;
  bool active = false;
};
MutationState g_mutation;

void InstallMutantBuilder();

MadeScheduler BuildMutant(const SchedulerSpec& spec) {
  // Build the real scheduler via the built-in builder, then re-install
  // ourselves for subsequent factory calls.
  RegisterScheduler(g_mutation.kind, nullptr);
  MadeScheduler made = MakeScheduler(spec);
  InstallMutantBuilder();
  made.scheduler = std::make_unique<MutantScheduler>(
      std::move(made.scheduler), g_mutation.mutant, g_mutation.stride);
  // made.tableau still points at the wrapped TableauScheduler, so table
  // pushes keep working through the scenario harness.
  return made;
}

void InstallMutantBuilder() {
  RegisterScheduler(g_mutation.kind,
                    [](const SchedulerSpec& spec) { return BuildMutant(spec); });
}

}  // namespace

const char* MutantKindName(MutantKind kind) {
  switch (kind) {
    case MutantKind::kNone:
      return "none";
    case MutantKind::kWrongVcpu:
      return "wrong_vcpu";
    case MutantKind::kOverrunSlice:
      return "overrun_slice";
  }
  return "?";
}

std::optional<MutantKind> MutantKindFromName(std::string_view name) {
  for (MutantKind kind :
       {MutantKind::kNone, MutantKind::kWrongVcpu, MutantKind::kOverrunSlice}) {
    if (name == MutantKindName(kind)) {
      return kind;
    }
  }
  return std::nullopt;
}

ScopedSchedulerMutation::ScopedSchedulerMutation(SchedKind kind, MutantKind mutant,
                                                 int stride) {
  TABLEAU_CHECK_MSG(!g_mutation.active, "one scheduler mutation at a time");
  g_mutation.kind = kind;
  g_mutation.mutant = mutant;
  g_mutation.stride = stride < 1 ? 1 : stride;
  g_mutation.active = true;
  if (mutant != MutantKind::kNone) {
    InstallMutantBuilder();
  }
}

ScopedSchedulerMutation::~ScopedSchedulerMutation() {
  if (g_mutation.active && g_mutation.mutant != MutantKind::kNone) {
    RegisterScheduler(g_mutation.kind, nullptr);
  }
  g_mutation.active = false;
}

}  // namespace tableau::check
