#include "src/check/oracles.h"

#include <algorithm>
#include <sstream>

#include "src/rt/hyperperiod.h"

namespace tableau::check {
namespace {

// Stop collecting after this many violations: one divergence usually
// cascades, and the first reports are the ones that matter.
constexpr std::size_t kMaxViolations = 64;

std::string At(TimeNs time, int cpu, VcpuId vcpu) {
  std::ostringstream out;
  out << "t=" << time << " cpu=" << cpu << " vcpu=" << vcpu << ": ";
  return out.str();
}

}  // namespace

SchedulerOracle::SchedulerOracle(OracleConfig config) : config_(std::move(config)) {
  occupant_.assign(static_cast<std::size_t>(config_.num_cpus), kIdleVcpu);
  state_.assign(config_.params.size(), State::kBlocked);
  running_cpu_.assign(config_.params.size(), -1);
  open_.assign(config_.params.size(), Interval{-1, -1, -1, false});
  for (const faults::TimerFault& fault : config_.fault_plan.timer_faults) {
    timer_slack_ = std::max(timer_slack_, fault.max_jitter + fault.coalesce_quantum);
  }
}

void SchedulerOracle::AddViolation(std::string message) {
  if (violations_.size() < kMaxViolations) {
    violations_.push_back(std::move(message));
  }
}

const VcpuParams& SchedulerOracle::ParamsOf(VcpuId vcpu) const {
  return config_.params[static_cast<std::size_t>(vcpu)];
}

void SchedulerOracle::CloseInterval(VcpuId vcpu, TimeNs end) {
  Interval& interval = open_[static_cast<std::size_t>(vcpu)];
  if (interval.start < 0) {
    return;
  }
  interval.end = end;
  OnIntervalClosed(vcpu, interval);
  interval = Interval{-1, -1, -1, false};
}

void SchedulerOracle::Consume(const TraceRecord& record) {
  ++records_;
  if (record.time < last_time_) {
    AddViolation(At(record.time, record.cpu, record.vcpu) +
                 "time went backwards (previous record at " + std::to_string(last_time_) +
                 ")");
  }
  last_time_ = std::max(last_time_, record.time);

  const bool has_vcpu =
      record.vcpu != kIdleVcpu && static_cast<std::size_t>(record.vcpu) < state_.size();
  const bool has_cpu =
      record.cpu >= 0 && static_cast<std::size_t>(record.cpu) < occupant_.size();

  switch (record.event) {
    case TraceEvent::kWakeup: {
      if (!has_vcpu) {
        break;
      }
      if (state_[static_cast<std::size_t>(record.vcpu)] != State::kBlocked) {
        AddViolation(At(record.time, record.cpu, record.vcpu) +
                     "wakeup of a vCPU that is not blocked");
      }
      state_[static_cast<std::size_t>(record.vcpu)] = State::kRunnable;
      break;
    }
    case TraceEvent::kBlock: {
      if (!has_vcpu || !has_cpu) {
        break;
      }
      if (occupant_[static_cast<std::size_t>(record.cpu)] != record.vcpu) {
        AddViolation(At(record.time, record.cpu, record.vcpu) +
                     "block of a vCPU that is not running on this CPU");
      }
      occupant_[static_cast<std::size_t>(record.cpu)] = kIdleVcpu;
      state_[static_cast<std::size_t>(record.vcpu)] = State::kBlocked;
      running_cpu_[static_cast<std::size_t>(record.vcpu)] = -1;
      CloseInterval(record.vcpu, record.time);
      break;
    }
    case TraceEvent::kDeschedule: {
      if (!has_vcpu || !has_cpu) {
        break;
      }
      if (occupant_[static_cast<std::size_t>(record.cpu)] != record.vcpu) {
        AddViolation(At(record.time, record.cpu, record.vcpu) +
                     "deschedule of a vCPU that is not running on this CPU");
      }
      occupant_[static_cast<std::size_t>(record.cpu)] = kIdleVcpu;
      state_[static_cast<std::size_t>(record.vcpu)] = State::kRunnable;
      running_cpu_[static_cast<std::size_t>(record.vcpu)] = -1;
      CloseInterval(record.vcpu, record.time);
      break;
    }
    case TraceEvent::kDispatch: {
      if (!has_vcpu || !has_cpu) {
        break;
      }
      const auto vcpu_index = static_cast<std::size_t>(record.vcpu);
      const auto cpu_index = static_cast<std::size_t>(record.cpu);
      if (occupant_[cpu_index] != kIdleVcpu) {
        AddViolation(At(record.time, record.cpu, record.vcpu) +
                     "dispatch onto a CPU still occupied by vCPU " +
                     std::to_string(occupant_[cpu_index]));
      }
      if (state_[vcpu_index] == State::kBlocked) {
        AddViolation(At(record.time, record.cpu, record.vcpu) +
                     "dispatch of a blocked vCPU");
      }
      if (state_[vcpu_index] == State::kRunning) {
        AddViolation(At(record.time, record.cpu, record.vcpu) +
                     "dispatch of a vCPU already running on cpu " +
                     std::to_string(running_cpu_[vcpu_index]));
      }
      occupant_[cpu_index] = record.vcpu;
      state_[vcpu_index] = State::kRunning;
      running_cpu_[vcpu_index] = record.cpu;
      open_[vcpu_index] = Interval{record.time, -1, record.cpu, record.arg != 0};
      OnDispatch(record);
      break;
    }
    case TraceEvent::kIdle: {
      if (has_cpu && occupant_[static_cast<std::size_t>(record.cpu)] != kIdleVcpu) {
        AddViolation(At(record.time, record.cpu, record.vcpu) +
                     "idle on a CPU still occupied by vCPU " +
                     std::to_string(occupant_[static_cast<std::size_t>(record.cpu)]));
      }
      break;
    }
    case TraceEvent::kTableSwitch: {
      OnTableSwitch(record);
      break;
    }
  }
}

void SchedulerOracle::Finish(TimeNs end_time) {
  for (std::size_t v = 0; v < open_.size(); ++v) {
    CloseInterval(static_cast<VcpuId>(v), std::max(end_time, last_time_));
  }
}

std::int64_t WindowedServiceCheck::Add(TimeNs start, TimeNs end) {
  for (std::int64_t k = start / window_; k * window_ < end; ++k) {
    const TimeNs lo = std::max(start, k * window_);
    const TimeNs hi = std::min(end, (k + 1) * window_);
    if (hi <= lo) {
      continue;
    }
    TimeNs& total = totals_[k];
    total += hi - lo;
    if (total > bound_ && k != reported_) {
      reported_ = k;
      return k;
    }
  }
  return -1;
}

TimeNs WindowedServiceCheck::WindowTotal(std::int64_t index) const {
  const auto it = totals_.find(index);
  return it == totals_.end() ? 0 : it->second;
}

namespace {

// ---------------------------------------------------------------------------
// Horizon oracle: the shared "no interval outlives the decision horizon"
// check, parameterized by a per-scheduler bound, plus optional capped-window
// accounting. Covers Credit, Credit2, and CFS.
// ---------------------------------------------------------------------------
class HorizonOracle : public SchedulerOracle {
 public:
  HorizonOracle(OracleConfig config, const char* name, TimeNs horizon,
                TimeNs cap_window, TimeNs cap_refill_slack)
      : SchedulerOracle(std::move(config)), name_(name), horizon_(horizon) {
    if (cap_window > 0) {
      for (std::size_t v = 0; v < config_.params.size(); ++v) {
        const double cap = config_.params[v].cap;
        if (cap <= 0) {
          continue;
        }
        // Phase-agnostic deferrable-server bound: an aligned window overlaps
        // at most two refill periods, so capped service in it never exceeds
        // two refills plus one decision-horizon overshoot.
        const auto bound = static_cast<TimeNs>(2 * cap * static_cast<double>(cap_window)) +
                           cap_refill_slack + TimerSlack();
        windows_.emplace(static_cast<VcpuId>(v),
                         WindowedServiceCheck(cap_window, bound));
      }
    }
  }

 protected:
  void OnIntervalClosed(VcpuId vcpu, const Interval& interval) override {
    const TimeNs length = interval.end - interval.start;
    if (length > horizon_ + TimerSlack()) {
      std::ostringstream out;
      out << name_ << ": vcpu " << vcpu << " service interval [" << interval.start
          << ", " << interval.end << ") on cpu " << interval.cpu
          << " outlives the decision horizon " << horizon_ << " + slack "
          << TimerSlack();
      AddViolation(out.str());
    }
    const auto it = windows_.find(vcpu);
    if (it != windows_.end()) {
      const std::int64_t bad = it->second.Add(interval.start, interval.end);
      if (bad >= 0) {
        std::ostringstream out;
        out << name_ << ": capped vcpu " << vcpu << " received "
            << it->second.WindowTotal(bad) << " ns of service in enforcement window "
            << bad << " (bound " << it->second.bound() << ")";
        AddViolation(out.str());
      }
    }
  }

 private:
  const char* name_;
  TimeNs horizon_;
  std::map<VcpuId, WindowedServiceCheck> windows_;
};

// ---------------------------------------------------------------------------
// RTDS oracle: derives each vCPU's (budget, period) from its reservation
// exactly as the scheduler does (MapRequestToTask), then bounds intervals by
// the budget and windowed service by two refills.
// ---------------------------------------------------------------------------
class RtdsOracle : public SchedulerOracle {
 public:
  explicit RtdsOracle(OracleConfig config) : SchedulerOracle(std::move(config)) {
    for (std::size_t v = 0; v < config_.params.size(); ++v) {
      VcpuRequest request;
      request.vcpu = static_cast<VcpuId>(v);
      request.utilization = config_.params[v].utilization;
      request.latency_goal = config_.params[v].latency_goal;
      const std::optional<TaskMapping> mapping = MapRequestToTask(request);
      if (!mapping.has_value()) {
        continue;
      }
      // RTDS floors every grant at the 100 us enforceability threshold, so
      // both the per-interval and per-window bounds carry that floor.
      const TimeNs grant = std::max(mapping->task.cost, kMinPeriodNs);
      budgets_.emplace(request.vcpu, grant);
      windows_.emplace(request.vcpu,
                       WindowedServiceCheck(mapping->task.period,
                                            2 * grant + kMinPeriodNs + TimerSlack()));
    }
  }

 protected:
  void OnIntervalClosed(VcpuId vcpu, const Interval& interval) override {
    const auto budget = budgets_.find(vcpu);
    if (budget == budgets_.end()) {
      return;
    }
    const TimeNs length = interval.end - interval.start;
    if (length > budget->second + TimerSlack()) {
      std::ostringstream out;
      out << "rtds: vcpu " << vcpu << " interval [" << interval.start << ", "
          << interval.end << ") exceeds its server budget " << budget->second
          << " + slack " << TimerSlack();
      AddViolation(out.str());
    }
    const auto window = windows_.find(vcpu);
    if (window != windows_.end()) {
      const std::int64_t bad = window->second.Add(interval.start, interval.end);
      if (bad >= 0) {
        std::ostringstream out;
        out << "rtds: vcpu " << vcpu << " received " << window->second.WindowTotal(bad)
            << " ns in period window " << bad << " (bound " << window->second.bound()
            << ")";
        AddViolation(out.str());
      }
    }
  }

 private:
  std::map<VcpuId, TimeNs> budgets_;
  std::map<VcpuId, WindowedServiceCheck> windows_;
};

// ---------------------------------------------------------------------------
// Tableau oracle: truly differential. Tracks the active table through
// kTableSwitch generations and checks every dispatch against an independent
// lookup at the dispatch instant.
// ---------------------------------------------------------------------------
class TableauOracle : public SchedulerOracle {
 public:
  explicit TableauOracle(OracleConfig config) : SchedulerOracle(std::move(config)) {
    expected_end_.assign(static_cast<std::size_t>(config_.num_cpus), kTimeNever);
  }

 protected:
  void OnTableSwitch(const TraceRecord& record) override {
    const auto generation = static_cast<std::uint64_t>(record.arg);
    if (generation <= seen_generation_ || generation > config_.tables.size()) {
      std::ostringstream out;
      out << "tableau: t=" << record.time << " switch to generation " << generation
          << " (seen " << seen_generation_ << ", " << config_.tables.size()
          << " tables installed)";
      AddViolation(out.str());
      return;
    }
    seen_generation_ = generation;
  }

  void OnDispatch(const TraceRecord& record) override {
    const SchedulingTable* table = Active();
    if (table == nullptr) {
      return;
    }
    const TimeNs offset = record.time % table->length();
    const LookupResult slot = table->Lookup(record.cpu, offset);
    const TimeNs absolute_end = record.time - offset + slot.interval_end;
    expected_end_[static_cast<std::size_t>(record.cpu)] = absolute_end + TimerSlack();

    if (record.arg == 0) {
      // First-level dispatch: must be exactly the table owner of this
      // instant. This is the core differential check — the production
      // dispatcher's slice-table lookup against our independent one.
      if (slot.vcpu != record.vcpu) {
        std::ostringstream out;
        out << "tableau: t=" << record.time << " cpu=" << record.cpu
            << " first-level dispatch of vcpu " << record.vcpu
            << " but the table reserves this instant for vcpu " << slot.vcpu
            << " (generation " << seen_generation_ << ")";
        AddViolation(out.str());
      }
      return;
    }

    // Second-level dispatch.
    if (config_.spec.capped) {
      std::ostringstream out;
      out << "tableau: t=" << record.time << " cpu=" << record.cpu
          << " second-level dispatch of vcpu " << record.vcpu << " in capped mode";
      AddViolation(out.str());
    }
    if (ParamsOf(record.vcpu).cap != 0.0) {
      std::ostringstream out;
      out << "tableau: t=" << record.time << " second-level dispatch of capped vcpu "
          << record.vcpu;
      AddViolation(out.str());
    }
    const std::vector<VcpuId>& locals =
        table->cpu(record.cpu).local_vcpus;
    if (std::find(locals.begin(), locals.end(), record.vcpu) == locals.end()) {
      std::ostringstream out;
      out << "tableau: t=" << record.time << " cpu=" << record.cpu
          << " second-level dispatch of vcpu " << record.vcpu
          << " which is not core-local";
      AddViolation(out.str());
    }
  }

  void OnIntervalClosed(VcpuId vcpu, const Interval& interval) override {
    const TimeNs bound = expected_end_[static_cast<std::size_t>(interval.cpu)];
    if (bound != kTimeNever && interval.end > bound) {
      std::ostringstream out;
      out << "tableau: vcpu " << vcpu << " ran to " << interval.end
          << " on cpu " << interval.cpu << ", past its slot end bound " << bound;
      AddViolation(out.str());
    }
  }

 private:
  const SchedulingTable* Active() const {
    if (seen_generation_ == 0 || seen_generation_ > config_.tables.size()) {
      return nullptr;
    }
    return config_.tables[seen_generation_ - 1].get();
  }

  // The adapter traces the first generation's kTableSwitch before the first
  // dispatch, so starting at 0 ("no table") is safe: a dispatch before any
  // switch record simply goes unchecked.
  std::uint64_t seen_generation_ = 0;
  std::vector<TimeNs> expected_end_;  // Per CPU, for the open interval.
};

}  // namespace

std::unique_ptr<SchedulerOracle> MakeOracle(OracleConfig config) {
  switch (config.spec.kind) {
    case SchedKind::kCredit: {
      const TimeNs timeslice = config.spec.credit_timeslice;
      return std::unique_ptr<SchedulerOracle>(new HorizonOracle(
          std::move(config), "credit", timeslice, 30 * kMillisecond, timeslice));
    }
    case SchedKind::kCredit2:
      return std::unique_ptr<SchedulerOracle>(new HorizonOracle(
          std::move(config), "credit2", 10 * kMillisecond, 0, 0));
    case SchedKind::kCfs:
      return std::unique_ptr<SchedulerOracle>(
          new HorizonOracle(std::move(config), "cfs", 12 * kMillisecond,
                            100 * kMillisecond, 12 * kMillisecond));
    case SchedKind::kRtds:
      return std::unique_ptr<SchedulerOracle>(new RtdsOracle(std::move(config)));
    case SchedKind::kTableau:
      return std::unique_ptr<SchedulerOracle>(new TableauOracle(std::move(config)));
  }
  return nullptr;
}

}  // namespace tableau::check
