// Independent verification of the Tableau reservation contract (paper
// Sec. 5): a machine-checked re-derivation of what a scheduling table
// *promises*, applied to any SchedulingTable regardless of which pipeline
// (partitioned EDF, C=D semi-partitioning, DP-Fair clustering, peephole,
// coalescing, co-scheduling) produced it.
//
// The verifier deliberately shares no code with SchedulingTable::Validate()
// or the planner: it re-checks structure from first principles (ordering,
// bounds, slice-table agreement against the linear reference lookup,
// cross-core exclusion) and then checks the per-vCPU supply contract:
//
//  - window supply: in every aligned period window [kT, (k+1)T) the vCPU
//    receives at least C - donated_ns, and the summed shortfall across all
//    windows never exceeds the coalescing donation the planner accounted;
//  - donation budget: coalescing may shave at most two sub-threshold
//    slivers per period window off a reservation;
//  - blackout: the longest cyclic service gap is at most 2(T - C), plus
//    slack for donated slivers (a dropped sliver merges its two adjacent
//    gaps);
//  - dedicated vCPUs own a full core (supply == table length, no gap);
//  - C=D split legality: split pieces live on >= 2 cores and never overlap
//    in time (cross-core exclusion), with the window/blackout checks
//    covering the summed supply.
//
// Violations come back as human-readable strings; an empty vector means the
// table honors every contract.
#ifndef SRC_CHECK_TABLE_VERIFIER_H_
#define SRC_CHECK_TABLE_VERIFIER_H_

#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/core/planner.h"
#include "src/table/scheduling_table.h"

namespace tableau::check {

// The reservation a table must honor for one vCPU, as the planner reported
// it (VcpuPlan) or as a test constructs it by hand.
struct VcpuContract {
  VcpuId vcpu = kIdleVcpu;
  TimeNs cost = 0;    // C per period (0 for dedicated vCPUs).
  TimeNs period = 0;  // T; must divide the table length (0 for dedicated).
  bool dedicated = false;
  bool split = false;
  // Time per table round the planner donated away from this vCPU during
  // coalescing; the supply checks grant exactly this much slack.
  TimeNs donated_ns = 0;
};

struct VerifyOptions {
  // Planner post-processing parameters the slack terms derive from. A zero
  // coalesce_threshold disables the donation-budget and min-allocation
  // checks (for hand-built tables that never went through coalescing).
  TimeNs coalesce_threshold = 30 * kMicrosecond;
  TimeNs split_granularity = kMinPeriodNs;
  // When non-zero, the table length must equal this exactly.
  TimeNs expected_length = 0;
};

// Verifies `table` against the contracts. Returns every violation found
// (not just the first); empty means the contract holds.
std::vector<std::string> VerifyTable(const SchedulingTable& table,
                                     const std::vector<VcpuContract>& contracts,
                                     const VerifyOptions& options);

// Derives the contracts a successful plan claims to honor from its VcpuPlan
// entries.
std::vector<VcpuContract> ContractsOf(const PlanResult& plan);

// Verifies a successful plan's table against its own claimed contracts,
// with options derived from the planner configuration.
std::vector<std::string> VerifyPlan(const PlanResult& plan, const PlannerConfig& config);

// Installs a Planner audit hook (SetPlanAuditHook) that runs VerifyPlan on
// every successful Solve in the process and aborts with a full violation
// report on failure. Used by the planner/parallel-plan test suites and the
// bench harness (TABLEAU_VERIFY_TABLES=1) to turn every planned table into a
// property check. Uninstall with SetPlanAuditHook(nullptr).
void InstallPlannerVerification();

}  // namespace tableau::check

#endif  // SRC_CHECK_TABLE_VERIFIER_H_
