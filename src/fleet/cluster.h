// fleet::Cluster: a deterministic multi-host simulation plus the control
// plane that places and migrates VMs across it (api_redesign; ROADMAP
// "from one box to a datacenter").
//
// Execution model: every host is one ShardedSimulation shard — its Machine,
// planner, and telemetry all live on the shard's engine. Cross-host events
// (VM arrival activations, live-migration transfers) travel through
// ShardedSimulation::Post and are merged at epoch barriers, so the run is
// byte-reproducible in serial, sharded, and parallel execution alike (the
// sharded determinism argument in src/sim/sharded_sim.h; asserted by
// tests/fleet_test.cc and bench_fleet --check-determinism).
//
// Control plane: at every control tick (a barrier whose period equals the
// telemetry window), the cluster — in deterministic host/VM order —
//  1. completes in-flight migrations whose source drain finished: the
//     source replans with the vCPU departed, the destination admits the
//     reservation through Planner::Solve's delta path, and the stream's
//     activation is posted to the destination shard after the transfer
//     delay;
//  2. detects overloaded VMs from the per-host telemetry SLO gauges
//     (burn-rate + burst streak, the slo.vm*.* signals) and starts a drain;
//  3. admits newly arrived VM reservations onto hosts by worst-fit or
//     first-fit bin packing over committed utilization.
#ifndef SRC_FLEET_CLUSTER_H_
#define SRC_FLEET_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/fleet/host.h"
#include "src/fleet/vm_stream.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"
#include "src/sim/sharded_sim.h"

namespace tableau::fleet {

enum class PlacementPolicy { kWorstFit, kFirstFit };

struct ClusterConfig {
  int num_hosts = 1;
  // Per-host template; index/engine/report_engine_stats are set per host.
  HostConfig host;
  // Execution mode knobs (num_shards is overwritten with num_hosts).
  ShardedSimulation::Options sim;
  // Control tick period. Must be a multiple of sim.epoch_ns and equal to
  // the hosts' telemetry window (cadence samples land on tick barriers).
  TimeNs control_period = 10 * kMillisecond;
  PlacementPolicy placement = PlacementPolicy::kWorstFit;
  // Admission cap: a host's committed utilization may not exceed this
  // fraction of its core count.
  double max_committed = 0.9;
  // Placement-RPC latency from admission decision to stream activation on
  // the target host (clamped up to one epoch by the Post contract).
  TimeNs admission_latency = 200 * kMicrosecond;
  // Live-migration transfer time (drain-complete to activation on the
  // destination; models the memory-copy phase).
  TimeNs transfer_ns = 10 * kMillisecond;
  // Overload detection thresholds: migrate when a VM's SLO burn rate is at
  // or above the threshold with a detected burst streak, after at least
  // min_requests completions. Each VM migrates at most once.
  double migrate_burn_threshold = 1.5;
  std::uint64_t min_requests_before_migration = 50;
  // The VM arrival stream (admitted in arrival order; ties by vm id).
  std::vector<VmReservation> vms;
};

class Cluster {
 public:
  // Per-VM control-plane view (tests and the describe CLI).
  struct VmState {
    enum class Status { kPending, kActive, kDraining, kRejected };
    Status status = Status::kPending;
    int host = -1;
    int slot = -1;
    int migrations = 0;
  };

  struct MigrationRecord {
    int vm = -1;
    int from = -1;
    int to = -1;
    TimeNs drain_started = 0;
    TimeNs transferred = 0;  // Drain-complete barrier time.
  };

  // Fleet-wide SLO attainment, aggregated over the VM streams (mode- and
  // placement-independent accounting that follows each VM across hosts).
  struct SloSummary {
    std::uint64_t requests = 0;
    std::uint64_t misses = 0;
    double attainment = 1.0;
    double worst_vm_attainment = 1.0;
    int vms_admitted = 0;
    int vms_rejected = 0;
  };

  explicit Cluster(const ClusterConfig& config);

  const ClusterConfig& config() const { return config_; }
  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  Host& host(int i) { return *hosts_[static_cast<std::size_t>(i)]; }
  ShardedSimulation& sim() { return sim_; }
  TimeNs Now() const { return sim_.Now(); }

  // Starts every host's machine (binding telemetry) and runs the t=0
  // control tick (arrivals due at time zero are admitted here).
  void Start();

  // Advances all hosts to `until`, running control ticks at every
  // control_period barrier on the way.
  void RunUntil(TimeNs until);

  // --- Export (deterministic host order; identical across exec modes) ---
  obs::MetricsSnapshot MergedMetrics();
  obs::TimeSeriesSnapshot MergedTimeSeries() const;
  SloSummary Slo() const;
  // FNV-1a over every VM stream's request history and every host's
  // scheduler counters — the whole-fleet determinism fingerprint.
  std::uint64_t Fingerprint() const;

  const VmState& vm_state(int vm) const {
    return vm_state_[static_cast<std::size_t>(vm)];
  }
  const VmStream& stream(int vm) const {
    return *streams_[static_cast<std::size_t>(vm)];
  }
  const std::vector<MigrationRecord>& migrations() const { return migrations_; }
  std::uint64_t control_ticks() const { return control_ticks_; }

  // --- Adaptive reservations (host.adaptive) ---
  // Total controller-issued resizes installed across all hosts.
  std::uint64_t resizes() const { return resizes_; }
  // Mean of (fleet committed utilization / fleet core count) sampled at
  // every control tick after the adapt phase — the packing-density metric
  // bench_adaptive compares elastic vs static on.
  double AvgCommittedFraction() const;

 private:
  void ControlTick(TimeNs now);
  void CompleteDrains(TimeNs now);
  void DetectOverloads(TimeNs now);
  void AdmitArrivals(TimeNs now);
  void AdaptReservations(TimeNs now);
  // Best host for `utilization` under the placement policy, or -1.
  // `exclude` skips one host (migration source).
  int PickHost(double utilization, int exclude) const;
  // Posts `fn` to `to_host`'s shard `delay` ns out, honoring the Post
  // contract (a too-early delay is re-posted at the advertised minimum).
  void PostToHost(int from_host, int to_host, TimeNs delay, std::function<void()> fn);
  void ActivateOn(int vm, int host, int slot, TimeNs at);

  ClusterConfig config_;
  // Declared before hosts_: host machines arm timers on shard engines.
  ShardedSimulation sim_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<VmStream>> streams_;  // Indexed by vm id.
  std::vector<VmState> vm_state_;
  std::vector<int> arrival_order_;  // vm ids sorted by (arrival, vm).
  std::size_t next_arrival_ = 0;
  std::vector<MigrationRecord> migrations_;
  std::vector<MigrationRecord> draining_;  // In-flight (drain phase).
  TimeNs next_tick_ = 0;
  std::uint64_t control_ticks_ = 0;
  std::uint64_t resizes_ = 0;
  double committed_fraction_sum_ = 0;
  std::uint64_t committed_samples_ = 0;
  bool started_ = false;
};

}  // namespace tableau::fleet

#endif  // SRC_FLEET_CLUSTER_H_
