#include "src/fleet/vm_stream.h"

#include <algorithm>

#include "src/common/check.h"

namespace tableau::fleet {
namespace {

inline void Mix(std::uint64_t& fp, std::uint64_t value) {
  fp = (fp ^ value) * 1099511628211ull;
}

}  // namespace

TimeNs VmStream::Intended(std::uint64_t k) const {
  return anchor_ + static_cast<TimeNs>(k) * period_;
}

void VmStream::Activate(Machine* machine, WorkQueueGuest* guest,
                        obs::Telemetry* telemetry, int slot, TimeNs at) {
  TABLEAU_CHECK(machine != nullptr && guest != nullptr);
  machine_ = machine;
  guest_ = guest;
  telemetry_ = telemetry;
  slot_ = slot;
  if (!anchored_) {
    anchored_ = true;
    anchor_ = at;
    period_ = static_cast<TimeNs>(static_cast<double>(kSecond) / spec_.requests_per_sec);
    TABLEAU_CHECK(period_ > 0);
  }
  paused_ = false;
  // One persistent pacer per placement, on the current host's engine.
  pacer_ = machine_->sim().CreateTimer([this] { OnTick(); });
  machine_->sim().Arm(pacer_, std::max(at, machine_->Now()));
}

void VmStream::Pause() {
  paused_ = true;
  if (machine_ != nullptr && pacer_ != kInvalidEvent) {
    machine_->sim().Disarm(pacer_);
    pacer_ = kInvalidEvent;
  }
}

void VmStream::OnTick() {
  if (paused_) {
    return;
  }
  const TimeNs now = machine_->Now();
  // Catch up the grid: after a migration several intended times are in the
  // past; each still gets exactly one request (posted back-to-back into the
  // guest FIFO), so downtime becomes latency, not lost spans.
  while (Intended(next_k_) <= now) {
    PostRequest(next_k_);
    ++next_k_;
  }
  machine_->sim().Arm(pacer_, Intended(next_k_));
}

void VmStream::PostRequest(std::uint64_t k) {
  const TimeNs intended = Intended(k);
  double cost = static_cast<double>(spec_.service_ns);
  if (spec_.shape == DemandShape::kDiurnal && spec_.shape_period > 0) {
    // Triangle wave over the intended-arrival clock: position in the period
    // maps to a multiplier ramping shape_min -> shape_max -> shape_min.
    const TimeNs pos = (intended + spec_.shape_phase) % spec_.shape_period;
    const double frac =
        static_cast<double>(pos) / static_cast<double>(spec_.shape_period);
    const double tri = frac < 0.5 ? 2.0 * frac : 2.0 * (1.0 - frac);
    cost *= spec_.shape_min + (spec_.shape_max - spec_.shape_min) * tri;
  }
  if (intended >= spec_.surge_at && intended < spec_.surge_until) {
    cost *= spec_.surge_factor;
  }
  const TimeNs service = static_cast<TimeNs>(cost);
  obs::Telemetry::RequestMark mark;
  if (telemetry_ != nullptr) {
    mark = telemetry_->BeginRequest(slot_, intended);
  }
  ++posted_;
  ++outstanding_;
  obs::Telemetry* telemetry = telemetry_;
  const int slot = slot_;
  guest_->Post(service, [this, k, intended, mark, telemetry, slot](TimeNs done) {
    const TimeNs latency = done - intended;
    if (telemetry != nullptr) {
      // Report against the slot the request ran on, even if the stream has
      // since been rebound to another host.
      telemetry->EndRequest(slot, mark, done, /*network_extra_ns=*/0);
    }
    ++completed_;
    --outstanding_;
    if (latency > spec_.latency_goal) {
      ++misses_;
    }
    max_latency_ = std::max(max_latency_, latency);
    Mix(fp_, k);
    Mix(fp_, static_cast<std::uint64_t>(latency));
  });
}

}  // namespace tableau::fleet
