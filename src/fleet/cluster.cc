#include "src/fleet/cluster.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace tableau::fleet {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline void Mix(std::uint64_t& fp, std::uint64_t value) {
  fp = (fp ^ value) * kFnvPrime;
}

ShardedSimulation::Options SimOptions(const ClusterConfig& config) {
  ShardedSimulation::Options options = config.sim;
  options.num_shards = config.num_hosts;
  return options;
}

}  // namespace

Cluster::Cluster(const ClusterConfig& config)
    : config_(config), sim_(SimOptions(config)) {
  TABLEAU_CHECK(config_.num_hosts >= 1);
  TABLEAU_CHECK_MSG(config_.control_period > 0 &&
                        config_.control_period % sim_.epoch_ns() == 0,
                    "control_period must be a positive multiple of epoch_ns");
  if (config_.host.attach_telemetry && config_.host.slots_per_core > 0) {
    TABLEAU_CHECK_MSG(config_.host.telemetry.window_ns == config_.control_period,
                      "telemetry window must equal the control period so "
                      "cadence samples land on tick barriers");
  }
  hosts_.reserve(static_cast<std::size_t>(config_.num_hosts));
  for (int h = 0; h < config_.num_hosts; ++h) {
    HostConfig host_config = config_.host;
    host_config.index = h;
    host_config.engine = &sim_.shard(h);
    // With several hosts, serial mode multiplexes them onto one engine, so
    // per-host engine gauges would depend on the execution mode; drop them
    // to keep snapshots byte-identical across modes. A 1-host cluster owns
    // its engine exclusively and keeps the gauges (the classic single-host
    // harness path).
    host_config.report_engine_stats = config_.num_hosts == 1;
    hosts_.push_back(std::make_unique<Host>(host_config));
  }

  streams_.reserve(config_.vms.size());
  vm_state_.resize(config_.vms.size());
  for (std::size_t i = 0; i < config_.vms.size(); ++i) {
    TABLEAU_CHECK_MSG(config_.vms[i].vm == static_cast<int>(i),
                      "VmReservation ids must be dense and in order");
    streams_.push_back(std::make_unique<VmStream>(config_.vms[i]));
    arrival_order_.push_back(static_cast<int>(i));
  }
  std::sort(arrival_order_.begin(), arrival_order_.end(), [this](int a, int b) {
    const auto& va = config_.vms[static_cast<std::size_t>(a)];
    const auto& vb = config_.vms[static_cast<std::size_t>(b)];
    if (va.arrival != vb.arrival) return va.arrival < vb.arrival;
    return a < b;
  });
}

void Cluster::Start() {
  TABLEAU_CHECK(!started_);
  started_ = true;
  for (auto& host : hosts_) {
    host->machine().Start();
  }
  ControlTick(0);
  next_tick_ = config_.control_period;
}

void Cluster::RunUntil(TimeNs until) {
  TABLEAU_CHECK(started_);
  while (next_tick_ <= until) {
    sim_.RunUntil(next_tick_);
    for (auto& host : hosts_) {
      host->machine().SampleTelemetryCadence(next_tick_);
    }
    ControlTick(next_tick_);
    next_tick_ += config_.control_period;
  }
  sim_.RunUntil(until);
}

void Cluster::ControlTick(TimeNs now) {
  ++control_ticks_;
  // Fixed phase order; every loop below walks hosts/VMs in deterministic
  // order, so the tick's actions are identical in all execution modes.
  CompleteDrains(now);
  DetectOverloads(now);
  AdmitArrivals(now);
  AdaptReservations(now);
}

void Cluster::AdaptReservations(TimeNs now) {
  // Controller ticks after admission, in host order: the telemetry window
  // views were closed by the cadence samples at this same barrier, so the
  // inputs — and therefore every resize — are execution-mode-independent.
  for (auto& host : hosts_) {
    resizes_ += static_cast<std::uint64_t>(host->AdaptTick(now));
  }
  // Packing-density sample: how much of the fleet's core capacity the live
  // reservations hold after this tick's resizes.
  double committed = 0;
  double cores = 0;
  for (const auto& host : hosts_) {
    committed += host->committed();
    cores += static_cast<double>(host->config().num_cpus);
  }
  committed_fraction_sum_ += cores > 0 ? committed / cores : 0;
  ++committed_samples_;
}

double Cluster::AvgCommittedFraction() const {
  return committed_samples_ == 0
             ? 0
             : committed_fraction_sum_ / static_cast<double>(committed_samples_);
}

void Cluster::PostToHost(int from_host, int to_host, TimeNs delay,
                         std::function<void()> fn) {
  ShardedSimulation::PostResult posted = sim_.Post(from_host, to_host, delay, fn);
  if (!posted.ok()) {
    // The control plane's RPC latencies may undershoot the epoch; the typed
    // result carries the minimum the sharding contract accepts.
    posted = sim_.Post(from_host, to_host, posted.required_delay, std::move(fn));
  }
  TABLEAU_CHECK(posted.ok());
}

void Cluster::ActivateOn(int vm, int host, int slot, TimeNs at) {
  Host* target = hosts_[static_cast<std::size_t>(host)].get();
  streams_[static_cast<std::size_t>(vm)]->Activate(
      &target->machine(), target->slot_guest(slot), target->telemetry(), slot, at);
}

void Cluster::CompleteDrains(TimeNs now) {
  std::vector<MigrationRecord> still_draining;
  for (MigrationRecord& migration : draining_) {
    VmStream& stream = *streams_[static_cast<std::size_t>(migration.vm)];
    if (!stream.Drained()) {
      still_draining.push_back(migration);
      continue;
    }
    VmState& state = vm_state_[static_cast<std::size_t>(migration.vm)];
    const VmReservation& spec = stream.spec();
    // Pick the destination now (not at detection): capacity may have moved
    // while the drain ran.
    const int destination = PickHost(spec.utilization, /*exclude=*/migration.from);
    if (destination < 0) {
      // Nowhere to go: resume on the source (its slot is still held).
      state.status = VmState::Status::kActive;
      ActivateOn(migration.vm, migration.from, state.slot, now);
      continue;
    }
    hosts_[static_cast<std::size_t>(migration.from)]->RemoveVm(state.slot);
    const int slot = hosts_[static_cast<std::size_t>(destination)]->AdmitVm(
        spec.utilization, spec.latency_goal);
    if (slot < 0) {
      // Destination replan failed; fall back to the source slot.
      const int back = hosts_[static_cast<std::size_t>(migration.from)]->AdmitVm(
          spec.utilization, spec.latency_goal);
      TABLEAU_CHECK(back >= 0);
      state.slot = back;
      state.status = VmState::Status::kActive;
      ActivateOn(migration.vm, migration.from, back, now);
      continue;
    }
    migration.to = destination;
    migration.transferred = now;
    state.host = destination;
    state.slot = slot;
    state.status = VmState::Status::kActive;
    ++state.migrations;
    migrations_.push_back(migration);
    const int vm = migration.vm;
    const int dest = destination;
    PostToHost(migration.from, destination, config_.transfer_ns,
               [this, vm, dest, slot] {
                 ActivateOn(vm, dest, slot,
                            hosts_[static_cast<std::size_t>(dest)]->machine().Now());
               });
  }
  draining_ = std::move(still_draining);
}

void Cluster::DetectOverloads(TimeNs now) {
  for (std::size_t vm = 0; vm < streams_.size(); ++vm) {
    VmState& state = vm_state_[vm];
    if (state.status != VmState::Status::kActive || state.migrations > 0) {
      continue;
    }
    VmStream& stream = *streams_[vm];
    if (stream.completed() < config_.min_requests_before_migration) {
      continue;
    }
    Host& host = *hosts_[static_cast<std::size_t>(state.host)];
    if (host.telemetry() == nullptr) {
      continue;
    }
    const obs::SloVerdict verdict = host.telemetry()->slo().VerdictFor(state.slot);
    // Sustained evidence: a consecutive over-budget streak (burst), or — for
    // overloads so heavy that completions straggle in less than once per
    // window, which gap-resets the streak — the same number of over-budget
    // windows accumulated non-consecutively.
    const bool sustained =
        verdict.burst_detected ||
        verdict.windows_over_budget >=
            static_cast<std::uint64_t>(
                host.telemetry()->slo().config().burst_streak_windows);
    if (!sustained || verdict.burn_rate < config_.migrate_burn_threshold) {
      continue;
    }
    // Overload confirmed: begin the drain. New arrivals stop immediately;
    // the FIFO keeps serving in-flight requests until Drained().
    stream.Pause();
    state.status = VmState::Status::kDraining;
    MigrationRecord migration;
    migration.vm = static_cast<int>(vm);
    migration.from = state.host;
    migration.drain_started = now;
    draining_.push_back(migration);
  }
}

void Cluster::AdmitArrivals(TimeNs now) {
  while (next_arrival_ < arrival_order_.size()) {
    const int vm = arrival_order_[next_arrival_];
    const VmReservation& spec = config_.vms[static_cast<std::size_t>(vm)];
    if (spec.arrival > now) {
      return;
    }
    ++next_arrival_;
    VmState& state = vm_state_[static_cast<std::size_t>(vm)];
    const int host = PickHost(spec.utilization, /*exclude=*/-1);
    int slot = -1;
    if (host >= 0) {
      slot = hosts_[static_cast<std::size_t>(host)]->AdmitVm(spec.utilization,
                                                             spec.latency_goal);
    }
    if (slot < 0) {
      state.status = VmState::Status::kRejected;
      continue;
    }
    state.status = VmState::Status::kActive;
    state.host = host;
    state.slot = slot;
    const int vm_id = vm;
    PostToHost(host, host, config_.admission_latency, [this, vm_id] {
      const VmState& placed = vm_state_[static_cast<std::size_t>(vm_id)];
      ActivateOn(vm_id, placed.host, placed.slot,
                 hosts_[static_cast<std::size_t>(placed.host)]->machine().Now());
    });
  }
}

int Cluster::PickHost(double utilization, int exclude) const {
  int best = -1;
  double best_free = -1;
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    if (static_cast<int>(h) == exclude) {
      continue;
    }
    const Host& host = *hosts_[h];
    const double limit =
        config_.max_committed * static_cast<double>(host.config().num_cpus);
    const double free = limit - host.committed();
    if (host.free_slots() == 0 || free < utilization) {
      continue;
    }
    if (config_.placement == PlacementPolicy::kFirstFit) {
      return static_cast<int>(h);
    }
    if (free > best_free) {  // Worst fit: most headroom, ties by index.
      best_free = free;
      best = static_cast<int>(h);
    }
  }
  return best;
}

obs::MetricsSnapshot Cluster::MergedMetrics() {
  obs::MetricsSnapshot merged;
  for (auto& host : hosts_) {
    host->machine().SettleAllCpus();
    merged.Merge(host->SnapshotMetrics());
  }
  return merged;
}

obs::TimeSeriesSnapshot Cluster::MergedTimeSeries() const {
  obs::TimeSeriesSnapshot merged;
  for (const auto& host : hosts_) {
    if (host->telemetry() != nullptr) {
      merged.Merge(host->telemetry()->TimeSeries());
    }
  }
  return merged;
}

Cluster::SloSummary Cluster::Slo() const {
  SloSummary summary;
  for (std::size_t vm = 0; vm < streams_.size(); ++vm) {
    const VmStream& stream = *streams_[vm];
    if (vm_state_[vm].status == VmState::Status::kRejected) {
      ++summary.vms_rejected;
      continue;
    }
    if (vm_state_[vm].status == VmState::Status::kPending) {
      continue;
    }
    ++summary.vms_admitted;
    summary.requests += stream.completed();
    summary.misses += stream.misses();
    if (stream.completed() > 0) {
      const double attainment =
          1.0 - static_cast<double>(stream.misses()) /
                    static_cast<double>(stream.completed());
      summary.worst_vm_attainment = std::min(summary.worst_vm_attainment, attainment);
    }
  }
  if (summary.requests > 0) {
    summary.attainment = 1.0 - static_cast<double>(summary.misses) /
                                   static_cast<double>(summary.requests);
  }
  return summary;
}

std::uint64_t Cluster::Fingerprint() const {
  std::uint64_t fp = kFnvOffset;
  for (std::size_t vm = 0; vm < streams_.size(); ++vm) {
    const VmStream& stream = *streams_[vm];
    Mix(fp, static_cast<std::uint64_t>(vm));
    Mix(fp, stream.posted());
    Mix(fp, stream.completed());
    Mix(fp, stream.misses());
    Mix(fp, static_cast<std::uint64_t>(stream.max_latency()));
    Mix(fp, stream.fingerprint());
  }
  for (const auto& host : hosts_) {
    const Machine& machine = host->machine();
    Mix(fp, machine.context_switches());
    Mix(fp, machine.schedule_invocations());
  }
  Mix(fp, static_cast<std::uint64_t>(migrations_.size()));
  Mix(fp, resizes_);
  return fp;
}

}  // namespace tableau::fleet
