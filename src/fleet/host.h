// fleet::Host: one simulated machine of a multi-host fleet behind a single
// handle (api_redesign). The host owns the full per-box wiring that
// harness::Scenario used to assemble by hand — fault injector, scheduler,
// machine, optional windowed telemetry, planner, current Tableau plan — and
// adds the slot-pool VM model the fleet control plane admits into:
//
//  - A fixed pool of `num_cpus * slots_per_core` single-vCPU slots is
//    created up front, all blocked and absent from the scheduling table, so
//    telemetry binding stays static while VMs arrive and depart at runtime.
//  - AdmitVm() assigns the lowest free slot and replans the Tableau table
//    through Planner::Solve's delta path (Sec. 7.1 incremental
//    re-computation); RemoveVm() replans with the vCPU departed and frees
//    the slot for reuse.
//
// A host runs either on its own discrete-event engine (standalone /
// classic single-host mode) or on an engine supplied by a
// ShardedSimulation shard (fleet mode) — see MachineConfig::engine.
#ifndef SRC_FLEET_HOST_H_
#define SRC_FLEET_HOST_H_

#include <memory>
#include <vector>

#include "src/adapt/controller.h"
#include "src/core/planner.h"
#include "src/core/replan.h"
#include "src/faults/fault_plan.h"
#include "src/hypervisor/machine.h"
#include "src/obs/telemetry.h"
#include "src/schedulers/factory.h"
#include "src/schedulers/tableau_scheduler.h"
#include "src/workloads/guest.h"

namespace tableau::fleet {

struct HostConfig {
  // Position of this host in the cluster (names, shard index).
  int index = 0;
  int num_cpus = 16;
  int cores_per_socket = 8;
  // vCPU slots pre-created per core. 0 = no slot pool: the owner adds
  // vCPUs itself through machine() (the single-host harness path).
  int slots_per_core = 4;
  SchedKind scheduler = SchedKind::kTableau;
  // Capped mode (no second-level scheduler) is the fleet default: only
  // table-backed slots ever run, so an empty slot is truly idle.
  bool capped = true;
  TimeNs credit_timeslice = 5 * kMillisecond;
  TimeNs switch_slip_tolerance = kTimeNever;
  int max_latency_degradations = 0;
  OverheadCosts costs;
  // Deterministic fault injection; empty builds no injector.
  faults::FaultPlan fault_plan;
  // External engine (a ShardedSimulation shard); null = machine-owned.
  Simulation* engine = nullptr;
  // See MachineConfig::report_engine_stats. Fleet hosts sharing a serial
  // engine must turn this off so snapshots are execution-mode-independent.
  bool report_engine_stats = true;
  // Windowed telemetry for the slot pool (SLO gauges drive the control
  // plane's overload detection). Off = the owner attaches telemetry itself.
  bool attach_telemetry = true;
  obs::Telemetry::Config telemetry;
  // Closed-loop adaptive reservations (src/adapt): when on, every admitted
  // VM is bound to an AdaptiveController and AdaptTick() — called by the
  // cluster at control barriers — resizes reservations through the
  // planner's delta path under ReplanController backoff. Off by default:
  // a detached controller leaves the host byte-identical to PR 9.
  bool adaptive = false;
  adapt::PolicyConfig adapt_policy;
  // Per-VM resize clamps handed to the controller at admission.
  double adapt_min_utilization = 1.0 / 32;
  double adapt_max_utilization = 1.0;
};

class Host {
 public:
  explicit Host(const HostConfig& config);

  const HostConfig& config() const { return config_; }
  int index() const { return config_.index; }
  Machine& machine() { return *machine_; }
  TableauScheduler* tableau() { return tableau_; }
  faults::FaultInjector* fault_injector() { return injector_.get(); }
  obs::Telemetry* telemetry() { return telemetry_.get(); }

  // Planner configuration for this host (machine metrics, fault injector,
  // degradation policy). The harness and the verification oracles construct
  // Planners from it; AdmitVm/RemoveVm use it internally.
  PlannerConfig planner_config() const;
  // Current Tableau plan (success == false until the first admission).
  const PlanResult& plan() const { return plan_; }

  // --- Slot-pool VM admission (fleet mode; requires slots_per_core > 0) ---

  int num_slots() const { return static_cast<int>(slots_.size()); }
  int free_slots() const;
  // Sum of admitted reservations' utilization, the control plane's
  // bin-packing weight.
  double committed() const { return committed_; }

  // Admits a VM reservation into the lowest free slot: replans the table
  // with the slot's vCPU added (delta path once a plan exists) and pushes
  // the new table through the time-synchronized switch protocol. Returns
  // the slot index, or -1 if no slot is free or planning failed (host
  // state unchanged). Call at a cluster barrier or from this host's shard.
  int AdmitVm(double utilization, TimeNs latency_goal);

  // Removes the VM in `slot`: replans with the vCPU departed and frees the
  // slot. The caller must have drained the slot's guest work first.
  void RemoveVm(int slot);

  // --- Adaptive reservations (config().adaptive) ---

  adapt::AdaptiveController* adaptive() { return adaptive_.get(); }

  // One controller tick at a deterministic barrier: reads every occupied
  // slot's last telemetry window view, feeds the controller, and applies
  // the non-hold decisions through ResizeVms. Returns resizes installed.
  int AdaptTick(TimeNs now);

  struct ResizeRequest {
    int slot = -1;
    double utilization = 0;
  };
  // Applies a batch of reservation resizes as ONE delta solve (departed =
  // resized vCPUs, added = their new requests) under ReplanController
  // backoff; a failure (or a still-open backoff window) keeps the previous
  // table for the whole batch. Reports CommitResize/RejectResize back to
  // the controller. Returns the number of resizes installed (all or none).
  int ResizeVms(const std::vector<ResizeRequest>& resizes, TimeNs now);

  bool slot_occupied(int slot) const {
    return slots_[static_cast<std::size_t>(slot)].occupied;
  }
  Vcpu* slot_vcpu(int slot) {
    return slots_[static_cast<std::size_t>(slot)].vcpu;
  }
  WorkQueueGuest* slot_guest(int slot) {
    return slots_[static_cast<std::size_t>(slot)].guest.get();
  }

  // End-of-run metrics snapshot (telemetry SLO gauges included).
  obs::MetricsSnapshot SnapshotMetrics();

 private:
  struct Slot {
    Vcpu* vcpu = nullptr;
    std::unique_ptr<WorkQueueGuest> guest;
    bool occupied = false;
    double utilization = 0;
  };

  // Replans with `added`/`departed` against the current plan and pushes the
  // result. Returns false (plan unchanged) on failure.
  bool Replan(std::vector<VcpuRequest> added, std::vector<VcpuId> departed);
  // Short all-idle placeholder table (installed before the first admission
  // and after the last departure).
  std::shared_ptr<SchedulingTable> EmptyTable() const;

  HostConfig config_;
  // Injector outlives the machine (machine holds a raw pointer).
  std::unique_ptr<faults::FaultInjector> injector_;
  std::unique_ptr<Machine> machine_;
  TableauScheduler* tableau_ = nullptr;
  std::unique_ptr<obs::Telemetry> telemetry_;
  std::unique_ptr<Planner> planner_;
  // Backoff wrapper for controller-issued resizes (lazily built with the
  // planner; replan.* metrics live in the machine registry).
  std::unique_ptr<ReplanController> replan_;
  std::unique_ptr<adapt::AdaptiveController> adaptive_;
  PlanResult plan_;
  std::vector<Slot> slots_;
  double committed_ = 0;
};

}  // namespace tableau::fleet

#endif  // SRC_FLEET_HOST_H_
