// VmStream: one fleet VM's workload — a wrk2-style constant-rate open-loop
// request stream (latency measured from the *intended* arrival grid, so
// Coordinated Omission cannot hide queueing or migration downtime) executed
// on whichever host slot the control plane currently places the VM on.
//
// The stream follows the VM across a live migration: Pause() stops new
// arrivals on the source (in-flight FIFO work keeps running until drained),
// Activate() rebinds to the destination slot and catches up the arrival
// grid — every grid point k gets exactly one request, so no request span is
// lost across the drain, and the downtime shows up as tail latency on the
// caught-up requests instead of disappearing.
#ifndef SRC_FLEET_VM_STREAM_H_
#define SRC_FLEET_VM_STREAM_H_

#include <cstdint>

#include "src/common/time.h"
#include "src/hypervisor/machine.h"
#include "src/obs/telemetry.h"
#include "src/workloads/guest.h"

namespace tableau::fleet {

// Time-varying per-request cost profile. Cost is a pure function of the
// request's *intended* arrival time, so the demand curve is identical in
// every execution mode and across migrations.
enum class DemandShape {
  kConstant,
  // Triangle wave: the service-cost multiplier ramps shape_min -> shape_max
  // over half of shape_period and back, phase-shifted by shape_phase. The
  // deterministic stand-in for diurnal tenant load.
  kDiurnal,
};

// One VM's reservation and workload shape in the cluster's arrival stream.
struct VmReservation {
  int vm = 0;  // Fleet-global VM id.
  double utilization = 0.25;
  TimeNs latency_goal = 20 * kMillisecond;
  // Open-loop request stream: constant-rate grid, fixed CPU per request.
  double requests_per_sec = 200;
  TimeNs service_ns = 500 * kMicrosecond;
  // When the VM enters the cluster's admission queue.
  TimeNs arrival = 0;
  // Scripted overload: requests intended in [surge_at, surge_until) cost
  // service_ns * surge_factor — an open-ended surge (the default) drives
  // the migration path; a bounded one models a flash crowd the adaptive
  // controller must absorb and then give back.
  TimeNs surge_at = kTimeNever;
  TimeNs surge_until = kTimeNever;
  double surge_factor = 1.0;
  // Demand shape multiplier stacked under the surge factor.
  DemandShape shape = DemandShape::kConstant;
  TimeNs shape_period = kSecond;
  TimeNs shape_phase = 0;
  double shape_min = 1.0;
  double shape_max = 1.0;
};

class VmStream {
 public:
  explicit VmStream(const VmReservation& spec) : spec_(spec) {}

  const VmReservation& spec() const { return spec_; }

  // Binds the stream to a host slot and starts (or resumes) the arrival
  // grid at `at`. The first activation anchors the grid; later activations
  // (after a migration) keep the anchor and catch up overdue grid points.
  // Call from the destination shard's event context or at a barrier.
  void Activate(Machine* machine, WorkQueueGuest* guest, obs::Telemetry* telemetry,
                int slot, TimeNs at);

  // Stops new arrivals (drain begins). In-flight requests keep running;
  // Drained() turns true once the last completion lands.
  void Pause();

  bool active() const { return !paused_ && machine_ != nullptr; }
  bool Drained() const { return outstanding_ == 0; }

  // --- Fleet-level SLO accounting (follows the VM across hosts) ---
  std::uint64_t posted() const { return posted_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t misses() const { return misses_; }  // latency > latency_goal.
  // Next unposted grid index; posted() == next_k once caught up, so the
  // grid has no holes (span-conservation invariant).
  std::uint64_t next_k() const { return next_k_; }
  TimeNs max_latency() const { return max_latency_; }
  // FNV-1a over every completion's (k, latency) in completion order —
  // the per-VM determinism fingerprint.
  std::uint64_t fingerprint() const { return fp_; }

 private:
  TimeNs Intended(std::uint64_t k) const;
  void OnTick();
  void PostRequest(std::uint64_t k);

  VmReservation spec_;
  Machine* machine_ = nullptr;
  WorkQueueGuest* guest_ = nullptr;
  obs::Telemetry* telemetry_ = nullptr;
  int slot_ = -1;
  EventId pacer_ = kInvalidEvent;
  bool anchored_ = false;
  bool paused_ = true;
  TimeNs anchor_ = 0;
  TimeNs period_ = 0;
  std::uint64_t next_k_ = 0;
  std::uint64_t posted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t outstanding_ = 0;
  TimeNs max_latency_ = 0;
  std::uint64_t fp_ = 1469598103934665603ull;
};

}  // namespace tableau::fleet

#endif  // SRC_FLEET_VM_STREAM_H_
