#include "src/fleet/host.h"

#include <string>
#include <utility>

#include "src/common/check.h"

namespace tableau::fleet {

Host::Host(const HostConfig& config) : config_(config) {
  if (!config_.fault_plan.empty()) {
    injector_ = std::make_unique<faults::FaultInjector>(config_.fault_plan);
  }

  SchedulerSpec spec;
  spec.kind = config_.scheduler;
  spec.capped = config_.capped;
  spec.credit_timeslice = config_.credit_timeslice;
  spec.switch_slip_tolerance = config_.switch_slip_tolerance;
  MadeScheduler made = MakeScheduler(spec);
  tableau_ = made.tableau;

  MachineConfig machine_config;
  machine_config.num_cpus = config_.num_cpus;
  machine_config.cores_per_socket = config_.cores_per_socket;
  machine_config.costs = config_.costs;
  machine_config.engine = config_.engine;
  machine_config.report_engine_stats = config_.report_engine_stats;
  machine_ = std::make_unique<Machine>(machine_config, std::move(made.scheduler));
  if (injector_ != nullptr) {
    machine_->SetFaultInjector(injector_.get());
  }

  if (config_.slots_per_core > 0) {
    const int num_slots = config_.num_cpus * config_.slots_per_core;
    slots_.reserve(static_cast<std::size_t>(num_slots));
    for (int s = 0; s < num_slots; ++s) {
      VcpuParams params;
      params.weight = 256;
      params.name = "h" + std::to_string(config_.index) + ".s" + std::to_string(s);
      Slot slot;
      slot.vcpu = machine_->AddVcpu(params);
      slot.guest = std::make_unique<WorkQueueGuest>(machine_.get(), slot.vcpu);
      slots_.push_back(std::move(slot));
    }
    if (config_.attach_telemetry) {
      telemetry_ = std::make_unique<obs::Telemetry>(config_.telemetry);
      std::vector<int> vm_of;
      for (int s = 0; s < num_slots; ++s) {
        telemetry_->SetVcpuName(s, slots_[static_cast<std::size_t>(s)].vcpu->params().name);
        vm_of.push_back(s);  // One slot = one VM for per-host SLO gauges.
      }
      telemetry_->SetVmOf(std::move(vm_of));
      machine_->AttachTelemetry(telemetry_.get());
    }
    if (tableau_ != nullptr) {
      tableau_->PushTable(EmptyTable());
    }
  }
  if (config_.adaptive) {
    adaptive_ = std::make_unique<adapt::AdaptiveController>(config_.adapt_policy);
  }
}

std::shared_ptr<SchedulingTable> Host::EmptyTable() const {
  // Placeholder table for a host with no admitted VM (Machine::Start needs a
  // table installed). Its round is kept one kMinPeriodNs, not a hyperperiod:
  // the dispatcher engages a pushed table at the *current* table's round wrap
  // ("two rounds out"), so a short empty round makes the first admission's
  // table live within ~2 * kMinPeriodNs instead of two hyperperiods.
  return std::make_shared<SchedulingTable>(SchedulingTable::Build(
      kMinPeriodNs,
      std::vector<std::vector<Allocation>>(static_cast<std::size_t>(config_.num_cpus))));
}

PlannerConfig Host::planner_config() const {
  PlannerConfig planner_config;
  planner_config.num_cpus = config_.num_cpus;
  planner_config.cores_per_socket = config_.cores_per_socket;
  planner_config.metrics = &machine_->metrics();
  // Deterministic counters only: wall-clock phase histograms would make
  // merged fleet metrics differ across runs and execution modes.
  planner_config.wall_timings = false;
  planner_config.fault_injector = injector_.get();
  planner_config.max_latency_degradations = config_.max_latency_degradations;
  return planner_config;
}

int Host::free_slots() const {
  int free = 0;
  for (const Slot& slot : slots_) {
    if (!slot.occupied) {
      ++free;
    }
  }
  return free;
}

bool Host::Replan(std::vector<VcpuRequest> added, std::vector<VcpuId> departed) {
  if (tableau_ == nullptr) {
    return true;  // Non-Tableau hosts have no table to maintain.
  }
  if (planner_ == nullptr) {
    planner_ = std::make_unique<Planner>(planner_config());
  }
  PlanRequest request;
  if (plan_.success) {
    request = PlanRequest::Delta(plan_, std::move(added), std::move(departed));
  } else {
    TABLEAU_CHECK(departed.empty());
    request = PlanRequest::Full(std::move(added));
  }
  // Injected planner failures surface as a failed admission (the control
  // plane keeps the VM pending); retrying is the caller's policy.
  PlanResult next = planner_->Solve(request);
  if (!next.success) {
    return false;
  }
  plan_ = std::move(next);
  tableau_->PushTable(std::make_shared<SchedulingTable>(plan_.table));
  return true;
}

int Host::AdmitVm(double utilization, TimeNs latency_goal) {
  int slot = -1;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    if (!slots_[s].occupied) {
      slot = static_cast<int>(s);
      break;
    }
  }
  if (slot < 0) {
    return -1;
  }
  Slot& state = slots_[static_cast<std::size_t>(slot)];
  VcpuRequest request;
  request.vcpu = state.vcpu->id();
  request.utilization = utilization;
  request.latency_goal = latency_goal;
  if (!Replan({request}, {})) {
    return -1;
  }
  state.occupied = true;
  state.utilization = utilization;
  committed_ += utilization;
  if (adaptive_ != nullptr) {
    adapt::VmLimits limits;
    limits.min_utilization = config_.adapt_min_utilization;
    limits.max_utilization = config_.adapt_max_utilization;
    limits.latency_goal = latency_goal;
    adaptive_->BindVm(slot, utilization, limits);
  }
  return slot;
}

void Host::RemoveVm(int slot) {
  Slot& state = slots_[static_cast<std::size_t>(slot)];
  TABLEAU_CHECK(state.occupied);
  if (tableau_ != nullptr) {
    TABLEAU_CHECK(plan_.success);
    if (plan_.requests.size() == 1) {
      // Last VM out: no delta target remains; reset to the empty table.
      plan_ = PlanResult{};
      tableau_->PushTable(EmptyTable());
    } else {
      TABLEAU_CHECK_MSG(Replan({}, {state.vcpu->id()}),
                        "host %d: departure replan failed for vCPU %d",
                        config_.index, state.vcpu->id());
    }
  }
  state.occupied = false;
  committed_ -= state.utilization;
  state.utilization = 0;
  if (adaptive_ != nullptr) {
    adaptive_->UnbindVm(slot);
  }
}

int Host::ResizeVms(const std::vector<ResizeRequest>& resizes, TimeNs now) {
  if (resizes.empty() || tableau_ == nullptr) {
    return 0;
  }
  TABLEAU_CHECK(plan_.success);  // Resizes only exist for admitted VMs.
  if (planner_ == nullptr) {
    planner_ = std::make_unique<Planner>(planner_config());
  }
  if (replan_ == nullptr) {
    replan_ = std::make_unique<ReplanController>(planner_.get(),
                                                 ReplanController::Config{});
    replan_->AttachMetrics(&machine_->metrics());
  }
  // One delta solve for the whole batch: every resized vCPU departs and
  // re-enters with its new (U, L) request.
  std::vector<VcpuRequest> added;
  std::vector<VcpuId> departed;
  added.reserve(resizes.size());
  departed.reserve(resizes.size());
  for (const ResizeRequest& resize : resizes) {
    Slot& state = slots_[static_cast<std::size_t>(resize.slot)];
    TABLEAU_CHECK(state.occupied);
    VcpuRequest request;
    request.vcpu = state.vcpu->id();
    request.utilization = resize.utilization;
    request.latency_goal = adaptive_ != nullptr && adaptive_->bound(resize.slot)
                               ? adaptive_->limits(resize.slot).latency_goal
                               : config_.telemetry.slo.target_latency_ns;
    added.push_back(request);
    departed.push_back(state.vcpu->id());
  }
  const ReplanController::Outcome outcome = replan_->TryReplan(
      PlanRequest::Delta(plan_, std::move(added), std::move(departed)), now);
  if (!outcome.installed) {
    // Backoff-suppressed or failed: keep the previous table (graceful
    // degradation) and tell the controller so it cools down.
    if (adaptive_ != nullptr) {
      for (const ResizeRequest& resize : resizes) {
        adaptive_->RejectResize(resize.slot);
      }
    }
    return 0;
  }
  plan_ = outcome.plan;
  tableau_->PushTable(std::make_shared<SchedulingTable>(plan_.table));
  for (const ResizeRequest& resize : resizes) {
    Slot& state = slots_[static_cast<std::size_t>(resize.slot)];
    committed_ += resize.utilization - state.utilization;
    state.utilization = resize.utilization;
    if (adaptive_ != nullptr) {
      adaptive_->CommitResize(resize.slot, resize.utilization);
    }
  }
  return static_cast<int>(resizes.size());
}

int Host::AdaptTick(TimeNs now) {
  if (adaptive_ == nullptr || telemetry_ == nullptr || !plan_.success) {
    return 0;
  }
  const double window = static_cast<double>(config_.telemetry.window_ns);
  std::vector<ResizeRequest> pending;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    const int slot = static_cast<int>(s);
    if (!slots_[s].occupied || !adaptive_->bound(slot)) {
      continue;
    }
    const obs::Telemetry::VcpuWindowView& view = telemetry_->LastWindowView(slot);
    const adapt::AdaptiveController::Decision decision = adaptive_->ObserveWindow(
        slot, view.has_data, static_cast<double>(view.supply_ns) / window,
        static_cast<double>(view.demand_ns) / window);
    if (decision.action != adapt::AdaptiveController::Action::kHold) {
      pending.push_back(ResizeRequest{slot, decision.target});
    }
  }
  return ResizeVms(pending, now);
}

obs::MetricsSnapshot Host::SnapshotMetrics() {
  if (adaptive_ != nullptr) {
    adaptive_->PublishMetrics(&machine_->metrics());
  }
  return machine_->SnapshotMetrics();
}

}  // namespace tableau::fleet
