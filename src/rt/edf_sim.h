// Uniprocessor EDF schedule simulation over one hyperperiod.
//
// The planner turns each core's task set into a concrete scheduling table by
// simulating an earliest-deadline-first schedule from time 0 to the
// hyperperiod H (Sec. 5, "Partitioning"). Because EDF is optimal on a
// uniprocessor and all periods divide H, a simulation in which every job
// meets its deadline and all work finishes by H yields a valid cyclic table.
//
// The simulator supports release offsets and constrained deadlines, which are
// required for C=D semi-partitioned subtasks: a zero-laxity subtask (D == C)
// that meets its deadline necessarily ran contiguously from its release, so
// a successful simulation also certifies that split pieces never overlap in
// time across cores.
#ifndef SRC_RT_EDF_SIM_H_
#define SRC_RT_EDF_SIM_H_

#include <vector>

#include "src/common/time.h"
#include "src/rt/periodic_task.h"

namespace tableau {

// One contiguous interval of a core's table, reserved for a vCPU.
struct Allocation {
  VcpuId vcpu = kIdleVcpu;
  TimeNs start = 0;
  TimeNs end = 0;

  TimeNs Length() const { return end - start; }
  bool operator==(const Allocation&) const = default;
};

struct EdfSimResult {
  bool schedulable = false;
  // Non-overlapping, time-ordered allocations covering [0, hyperperiod) with
  // idle gaps omitted. Adjacent allocations of the same vCPU are merged.
  std::vector<Allocation> allocations;
  // For diagnostics: the vCPU and absolute deadline of the first miss.
  VcpuId missed_vcpu = kIdleVcpu;
  TimeNs missed_deadline = 0;
};

// Simulates EDF over [0, hyperperiod) for the given tasks. Every task's
// period must divide `hyperperiod`, its offset satisfy
// 0 <= offset, and offset + deadline <= period (so all jobs complete within
// their own period window and the schedule is cyclic).
//
// Ties on absolute deadline are broken in favor of smaller laxity (D - C),
// then smaller vCPU id, so zero-laxity C=D subtasks always win ties and run
// contiguously.
EdfSimResult SimulateEdf(const std::vector<PeriodicTask>& tasks, TimeNs hyperperiod);

// Quick exact schedulability test: runs the simulation and reports success
// without materializing allocations (cheaper for binary searches).
bool EdfSchedulable(const std::vector<PeriodicTask>& tasks, TimeNs hyperperiod);

}  // namespace tableau

#endif  // SRC_RT_EDF_SIM_H_
