// Periodic-task model (Liu & Layland) used by the Tableau planner.
//
// Each vCPU with a reserved utilization U and a maximum scheduling latency L
// is mapped to a periodic task (C, T) with U = C/T and 2*(1-U)*T <= L
// (Sec. 5 of the paper). Tasks produced by C=D semi-partitioning additionally
// carry a release offset and a constrained deadline D <= T - offset.
#ifndef SRC_RT_PERIODIC_TASK_H_
#define SRC_RT_PERIODIC_TASK_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"

namespace tableau {

// Identifier of the vCPU a task represents. The planner hands tables back to
// the dispatcher keyed by these ids.
using VcpuId = std::int32_t;
inline constexpr VcpuId kIdleVcpu = -1;

struct PeriodicTask {
  VcpuId vcpu = kIdleVcpu;
  TimeNs cost = 0;      // C: execution budget per period.
  TimeNs period = 0;    // T.
  TimeNs deadline = 0;  // D, relative to release; D <= period - offset.
  TimeNs offset = 0;    // Release offset within each period window [k*T, (k+1)*T).

  // Implicit-deadline convenience constructor: D = T, offset = 0.
  static PeriodicTask Implicit(VcpuId vcpu, TimeNs cost, TimeNs period) {
    PeriodicTask t;
    t.vcpu = vcpu;
    t.cost = cost;
    t.period = period;
    t.deadline = period;
    t.offset = 0;
    return t;
  }

  double Utilization() const {
    TABLEAU_CHECK(period > 0);
    return static_cast<double>(cost) / static_cast<double>(period);
  }

  // Demand in nanoseconds per `hyperperiod` (exact; `period` must divide it).
  TimeNs DemandPerHyperperiod(TimeNs hyperperiod) const {
    TABLEAU_CHECK(period > 0 && hyperperiod % period == 0);
    return cost * (hyperperiod / period);
  }
};

// A vCPU reservation request as given to the planner: a minimum utilization
// share U in (0, 1] and a maximum acceptable scheduling latency L.
struct VcpuRequest {
  VcpuId vcpu = kIdleVcpu;
  double utilization = 0.0;
  TimeNs latency_goal = 0;
  // Optional NUMA placement constraint: restrict this vCPU to cores of the
  // given socket (-1 = anywhere). Honored by the partitioning stage (the
  // paper notes memory locality "can be easily incorporated" there); the
  // rare splitting/cluster fallbacks ignore it.
  int socket_affinity = -1;
};

// Sum of exact per-hyperperiod demands of a task set.
TimeNs TotalDemand(const std::vector<PeriodicTask>& tasks, TimeNs hyperperiod);

}  // namespace tableau

#endif  // SRC_RT_PERIODIC_TASK_H_
