#include "src/rt/cd_split.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/rt/edf_sim.h"
#include "src/rt/partition.h"

namespace tableau {
namespace {

// Cores ordered by spare capacity, largest first, excluding `used`.
std::vector<int> CoresBySpareCapacity(const std::vector<std::vector<PeriodicTask>>& core_tasks,
                                      TimeNs hyperperiod, const std::vector<bool>& used) {
  std::vector<int> cores;
  for (int c = 0; c < static_cast<int>(core_tasks.size()); ++c) {
    if (!used[static_cast<std::size_t>(c)]) {
      cores.push_back(c);
    }
  }
  std::vector<TimeNs> spare(core_tasks.size());
  for (std::size_t c = 0; c < core_tasks.size(); ++c) {
    spare[c] = SpareCapacity(core_tasks[c], hyperperiod);
  }
  std::sort(cores.begin(), cores.end(), [&](int a, int b) {
    const TimeNs sa = spare[static_cast<std::size_t>(a)];
    const TimeNs sb = spare[static_cast<std::size_t>(b)];
    if (sa != sb) return sa > sb;
    return a < b;
  });
  return cores;
}

// One schedulability probe of the split search: does `piece` fit on a core
// with `core_tasks`? Decided by the analytic admission ladder when possible,
// by exact EDF simulation otherwise — the verdict is identical either way.
bool PieceSchedulable(const std::vector<PeriodicTask>& core_tasks, const PeriodicTask& piece,
                      TimeNs hyperperiod, AdmissionTally* tally) {
  std::vector<PeriodicTask> with_piece = core_tasks;
  with_piece.push_back(piece);
  return AdmitCore(with_piece, hyperperiod, tally).schedulable;
}

// How many levels of the bisection tree to evaluate speculatively per round:
// the largest d with 2^d - 1 probes <= the pool's thread count. 1 (plain
// bisection) when serial.
int SpeculationDepth(ThreadPool* pool) {
  const int threads = pool == nullptr ? 1 : pool->num_threads();
  int depth = 1;
  while (depth < 5 && (1 << (depth + 1)) - 1 <= threads) {
    ++depth;
  }
  return depth;
}

}  // namespace

bool CdSplitTask(const PeriodicTask& task, std::vector<std::vector<PeriodicTask>>& core_tasks,
                 TimeNs hyperperiod, TimeNs granularity, ThreadPool* pool,
                 AdmissionTally* tally) {
  TABLEAU_CHECK(task.offset == 0 && task.deadline == task.period);
  TABLEAU_CHECK(granularity > 0);

  const int num_cores = static_cast<int>(core_tasks.size());
  std::vector<bool> used(static_cast<std::size_t>(num_cores), false);
  const std::size_t wave =
      pool != nullptr && pool->num_threads() > 1
          ? static_cast<std::size_t>(pool->num_threads())
          : 1;

  // Tentative assignment; only committed on success.
  std::vector<std::vector<PeriodicTask>> tentative = core_tasks;

  TimeNs remaining = task.cost;
  TimeNs offset = 0;
  int pieces = 0;

  while (remaining > 0 && pieces < num_cores) {
    const std::vector<int> order = CoresBySpareCapacity(tentative, hyperperiod, used);
    if (order.empty()) {
      return false;
    }

    // First preference: place the entire remainder as the final piece with
    // deadline T - offset on any core that can take it. Cores are probed in
    // waves of the pool width; the first success in `order` wins, exactly as
    // in a serial scan.
    PeriodicTask final_piece = task;
    final_piece.cost = remaining;
    final_piece.offset = offset;
    final_piece.deadline = task.period - offset;
    bool placed_final = false;
    if (final_piece.cost <= final_piece.deadline) {  // Always true: off+rem <= T.
      std::vector<char> fits(wave, 0);
      for (std::size_t base = 0; base < order.size() && !placed_final; base += wave) {
        const std::size_t count = std::min(wave, order.size() - base);
        ParallelFor(pool, count, [&](std::size_t i) {
          const auto c = static_cast<std::size_t>(order[base + i]);
          fits[i] = PieceSchedulable(tentative[c], final_piece, hyperperiod, tally) ? 1 : 0;
        });
        for (std::size_t i = 0; i < count; ++i) {
          if (fits[i] != 0) {
            tentative[static_cast<std::size_t>(order[base + i])].push_back(final_piece);
            remaining = 0;
            placed_final = true;
            break;
          }
        }
      }
    }
    if (placed_final) {
      break;
    }

    // Otherwise carve the largest schedulable zero-laxity piece out of the
    // core with the most spare capacity.
    const int core = order.front();
    const auto c = static_cast<std::size_t>(core);
    // Candidate budgets are multiples of the granularity, capped so that a
    // non-zero remainder keeps at least one granule for the final piece.
    const TimeNs max_whole = remaining;
    const TimeNs max_partial = remaining - granularity;
    TimeNs lo = granularity;          // Smallest useful piece.
    TimeNs hi = max_whole;            // Inclusive upper bound.
    if (lo > hi) {
      return false;                   // Remainder smaller than one granule.
    }

    auto zero_laxity_ok = [&](TimeNs budget) {
      PeriodicTask piece = task;
      piece.cost = budget;
      piece.offset = offset;
      piece.deadline = budget;
      if (piece.offset + piece.deadline > piece.period) {
        return false;
      }
      return PieceSchedulable(tentative[c], piece, hyperperiod, tally);
    };

    if (!zero_laxity_ok(lo)) {
      return false;  // Even the smallest piece does not fit: give up.
    }
    // Binary search the largest schedulable budget over granules. With a
    // pool, each round speculatively evaluates the probes of the next
    // `depth` bisection levels concurrently and then takes `depth` ordinary
    // bisection steps against the precomputed answers — the sequence of
    // consumed probes is exactly the serial one, so the chosen split point
    // is identical (no monotonicity assumption needed). depth == 1 is plain
    // binary search.
    const int depth = SpeculationDepth(pool);
    TimeNs best = lo;
    TimeNs lo_k = 1;
    TimeNs hi_k = (hi + granularity - 1) / granularity;
    while (lo_k <= hi_k) {
      std::vector<TimeNs> probe_ks;
      std::vector<std::pair<TimeNs, TimeNs>> frontier = {{lo_k, hi_k}};
      for (int level = 0; level < depth; ++level) {
        std::vector<std::pair<TimeNs, TimeNs>> next_frontier;
        for (const auto& [l, h] : frontier) {
          if (l > h) {
            continue;
          }
          const TimeNs m = l + (h - l) / 2;
          probe_ks.push_back(m);
          next_frontier.emplace_back(l, m - 1);
          next_frontier.emplace_back(m + 1, h);
        }
        frontier = std::move(next_frontier);
      }
      std::vector<char> probe_ok(probe_ks.size(), 0);
      ParallelFor(pool, probe_ks.size(), [&](std::size_t i) {
        probe_ok[i] = zero_laxity_ok(std::min(probe_ks[i] * granularity, hi)) ? 1 : 0;
      });
      std::map<TimeNs, bool> verdict;
      for (std::size_t i = 0; i < probe_ks.size(); ++i) {
        verdict[probe_ks[i]] = probe_ok[i] != 0;
      }
      for (int step = 0; step < depth && lo_k <= hi_k; ++step) {
        const TimeNs mid_k = lo_k + (hi_k - lo_k) / 2;
        const TimeNs budget = std::min(mid_k * granularity, hi);
        if (verdict.at(mid_k)) {
          best = budget;
          lo_k = mid_k + 1;
        } else {
          hi_k = mid_k - 1;
        }
      }
    }
    // Avoid leaving a sub-granule remainder.
    if (best < max_whole && best > max_partial) {
      best = max_partial;
      if (best < granularity) {
        return false;
      }
    }

    PeriodicTask piece = task;
    piece.cost = best;
    piece.offset = offset;
    piece.deadline = best;
    tentative[c].push_back(piece);
    used[c] = true;
    offset += best;
    remaining -= best;
    ++pieces;
  }

  if (remaining > 0) {
    return false;
  }
  core_tasks = std::move(tentative);
  return true;
}

SemiPartitionResult SemiPartition(const std::vector<PeriodicTask>& tasks, int num_cores,
                                  TimeNs hyperperiod, TimeNs granularity,
                                  ThreadPool* pool, AdmissionTally* tally) {
  SemiPartitionResult result;
  PartitionResult partition = WorstFitDecreasing(tasks, num_cores, hyperperiod, pool);
  result.core_tasks = std::move(partition.core_tasks);
  for (const PeriodicTask& task : partition.unassigned) {
    if (CdSplitTask(task, result.core_tasks, hyperperiod, granularity, pool, tally)) {
      ++result.num_split_tasks;
    } else {
      result.unassigned.push_back(task);
    }
  }
  result.complete = result.unassigned.empty();
  return result;
}

}  // namespace tableau
