#include "src/rt/cd_split.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"
#include "src/rt/edf_sim.h"
#include "src/rt/partition.h"

namespace tableau {
namespace {

// Cores ordered by spare capacity, largest first, excluding `used`.
std::vector<int> CoresBySpareCapacity(const std::vector<std::vector<PeriodicTask>>& core_tasks,
                                      TimeNs hyperperiod, const std::vector<bool>& used) {
  std::vector<int> cores;
  for (int c = 0; c < static_cast<int>(core_tasks.size()); ++c) {
    if (!used[static_cast<std::size_t>(c)]) {
      cores.push_back(c);
    }
  }
  std::vector<TimeNs> spare(core_tasks.size());
  for (std::size_t c = 0; c < core_tasks.size(); ++c) {
    spare[c] = SpareCapacity(core_tasks[c], hyperperiod);
  }
  std::sort(cores.begin(), cores.end(), [&](int a, int b) {
    const TimeNs sa = spare[static_cast<std::size_t>(a)];
    const TimeNs sb = spare[static_cast<std::size_t>(b)];
    if (sa != sb) return sa > sb;
    return a < b;
  });
  return cores;
}

bool PieceSchedulable(const std::vector<PeriodicTask>& core_tasks, const PeriodicTask& piece,
                      TimeNs hyperperiod) {
  std::vector<PeriodicTask> with_piece = core_tasks;
  with_piece.push_back(piece);
  return EdfSchedulable(with_piece, hyperperiod);
}

}  // namespace

bool CdSplitTask(const PeriodicTask& task, std::vector<std::vector<PeriodicTask>>& core_tasks,
                 TimeNs hyperperiod, TimeNs granularity) {
  TABLEAU_CHECK(task.offset == 0 && task.deadline == task.period);
  TABLEAU_CHECK(granularity > 0);

  const int num_cores = static_cast<int>(core_tasks.size());
  std::vector<bool> used(static_cast<std::size_t>(num_cores), false);

  // Tentative assignment; only committed on success.
  std::vector<std::vector<PeriodicTask>> tentative = core_tasks;

  TimeNs remaining = task.cost;
  TimeNs offset = 0;
  int pieces = 0;

  while (remaining > 0 && pieces < num_cores) {
    const std::vector<int> order = CoresBySpareCapacity(tentative, hyperperiod, used);
    if (order.empty()) {
      return false;
    }

    // First preference: place the entire remainder as the final piece with
    // deadline T - offset on any core that can take it.
    bool placed_final = false;
    for (const int core : order) {
      PeriodicTask final_piece = task;
      final_piece.cost = remaining;
      final_piece.offset = offset;
      final_piece.deadline = task.period - offset;
      if (final_piece.cost > final_piece.deadline) {
        break;  // Infeasible regardless of core (cannot happen: off+rem <= T).
      }
      const auto c = static_cast<std::size_t>(core);
      if (PieceSchedulable(tentative[c], final_piece, hyperperiod)) {
        tentative[c].push_back(final_piece);
        remaining = 0;
        placed_final = true;
        break;
      }
    }
    if (placed_final) {
      break;
    }

    // Otherwise carve the largest schedulable zero-laxity piece out of the
    // core with the most spare capacity.
    const int core = order.front();
    const auto c = static_cast<std::size_t>(core);
    // Candidate budgets are multiples of the granularity, capped so that a
    // non-zero remainder keeps at least one granule for the final piece.
    const TimeNs max_whole = remaining;
    const TimeNs max_partial = remaining - granularity;
    TimeNs lo = granularity;          // Smallest useful piece.
    TimeNs hi = max_whole;            // Inclusive upper bound.
    if (lo > hi) {
      return false;                   // Remainder smaller than one granule.
    }

    auto zero_laxity_ok = [&](TimeNs budget) {
      PeriodicTask piece = task;
      piece.cost = budget;
      piece.offset = offset;
      piece.deadline = budget;
      if (piece.offset + piece.deadline > piece.period) {
        return false;
      }
      return PieceSchedulable(tentative[c], piece, hyperperiod);
    };

    if (!zero_laxity_ok(lo)) {
      return false;  // Even the smallest piece does not fit: give up.
    }
    // Binary search the largest schedulable budget over granules.
    TimeNs best = lo;
    TimeNs lo_k = 1;
    TimeNs hi_k = (hi + granularity - 1) / granularity;
    while (lo_k <= hi_k) {
      const TimeNs mid_k = lo_k + (hi_k - lo_k) / 2;
      const TimeNs budget = std::min(mid_k * granularity, hi);
      if (zero_laxity_ok(budget)) {
        best = budget;
        lo_k = mid_k + 1;
      } else {
        hi_k = mid_k - 1;
      }
    }
    // Avoid leaving a sub-granule remainder.
    if (best < max_whole && best > max_partial) {
      best = max_partial;
      if (best < granularity) {
        return false;
      }
    }

    PeriodicTask piece = task;
    piece.cost = best;
    piece.offset = offset;
    piece.deadline = best;
    tentative[c].push_back(piece);
    used[c] = true;
    offset += best;
    remaining -= best;
    ++pieces;
  }

  if (remaining > 0) {
    return false;
  }
  core_tasks = std::move(tentative);
  return true;
}

SemiPartitionResult SemiPartition(const std::vector<PeriodicTask>& tasks, int num_cores,
                                  TimeNs hyperperiod, TimeNs granularity) {
  SemiPartitionResult result;
  PartitionResult partition = WorstFitDecreasing(tasks, num_cores, hyperperiod);
  result.core_tasks = std::move(partition.core_tasks);
  for (const PeriodicTask& task : partition.unassigned) {
    if (CdSplitTask(task, result.core_tasks, hyperperiod, granularity)) {
      ++result.num_split_tasks;
    } else {
      result.unassigned.push_back(task);
    }
  }
  result.complete = result.unassigned.empty();
  return result;
}

}  // namespace tableau
