#include "src/rt/partition.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/thread_pool.h"

namespace tableau {
namespace {

// Below this core count a parallel candidate scan costs more in hand-off
// latency than the scan itself; stay serial.
constexpr int kMinCoresForParallelScan = 32;

// The serial worst-fit choice over [core_begin, core_end): the feasible core
// with minimum load, lowest index breaking ties. Returns -1 if none fits.
int BestCoreInRange(const std::vector<TimeNs>& load, TimeNs demand, int socket,
                    int cores_per_socket, TimeNs hyperperiod, int core_begin,
                    int core_end) {
  int best = -1;
  for (int core = core_begin; core < core_end; ++core) {
    if (socket >= 0 && core / cores_per_socket != socket) {
      continue;  // NUMA affinity constraint.
    }
    const auto c = static_cast<std::size_t>(core);
    if (load[c] + demand > hyperperiod) {
      continue;
    }
    if (best == -1 || load[c] < load[static_cast<std::size_t>(best)]) {
      best = core;
    }
  }
  return best;
}

}  // namespace

TimeNs SpareCapacity(const std::vector<PeriodicTask>& core_tasks, TimeNs hyperperiod) {
  return hyperperiod - TotalDemand(core_tasks, hyperperiod);
}

PartitionResult WorstFitDecreasing(const std::vector<PeriodicTask>& tasks, int num_cores,
                                   TimeNs hyperperiod, ThreadPool* pool) {
  return WorstFitDecreasingNuma(tasks, {}, num_cores, /*cores_per_socket=*/num_cores,
                                hyperperiod, pool);
}

PartitionResult WorstFitDecreasingNuma(const std::vector<PeriodicTask>& tasks,
                                       const std::map<VcpuId, int>& socket_of,
                                       int num_cores, int cores_per_socket,
                                       TimeNs hyperperiod, ThreadPool* pool) {
  TABLEAU_CHECK(num_cores > 0);
  TABLEAU_CHECK(cores_per_socket > 0);
  PartitionResult result;
  result.core_tasks.resize(static_cast<std::size_t>(num_cores));

  std::vector<PeriodicTask> sorted = tasks;
  std::sort(sorted.begin(), sorted.end(), [&](const PeriodicTask& a, const PeriodicTask& b) {
    const TimeNs da = a.DemandPerHyperperiod(hyperperiod);
    const TimeNs db = b.DemandPerHyperperiod(hyperperiod);
    if (da != db) return da > db;
    return a.vcpu < b.vcpu;  // Deterministic order for equal demands.
  });

  const bool parallel_scan =
      pool != nullptr && pool->num_threads() > 1 && num_cores >= kMinCoresForParallelScan;
  const int num_chunks = parallel_scan ? std::min(pool->num_threads(), num_cores) : 1;
  std::vector<int> chunk_best(static_cast<std::size_t>(num_chunks));

  std::vector<TimeNs> load(static_cast<std::size_t>(num_cores), 0);
  for (const PeriodicTask& task : sorted) {
    const TimeNs demand = task.DemandPerHyperperiod(hyperperiod);
    int socket = -1;
    if (const auto it = socket_of.find(task.vcpu); it != socket_of.end()) {
      socket = it->second;
    }
    int best = -1;
    if (!parallel_scan) {
      best = BestCoreInRange(load, demand, socket, cores_per_socket, hyperperiod, 0,
                             num_cores);
    } else {
      // Each chunk evaluates a contiguous core range; the in-order reduction
      // reproduces the serial min-load / lowest-index choice exactly.
      ParallelFor(pool, static_cast<std::size_t>(num_chunks), [&](std::size_t chunk) {
        const int begin = static_cast<int>(chunk) * num_cores / num_chunks;
        const int end = static_cast<int>(chunk + 1) * num_cores / num_chunks;
        chunk_best[chunk] = BestCoreInRange(load, demand, socket, cores_per_socket,
                                            hyperperiod, begin, end);
      });
      for (const int candidate : chunk_best) {
        if (candidate == -1) {
          continue;
        }
        if (best == -1 || load[static_cast<std::size_t>(candidate)] <
                              load[static_cast<std::size_t>(best)]) {
          best = candidate;
        }
      }
    }
    if (best == -1) {
      result.unassigned.push_back(task);
    } else {
      const auto b = static_cast<std::size_t>(best);
      result.core_tasks[b].push_back(task);
      load[b] += demand;
    }
  }
  result.complete = result.unassigned.empty();
  return result;
}

}  // namespace tableau
