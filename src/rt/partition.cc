#include "src/rt/partition.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/thread_pool.h"

namespace tableau {
namespace {

// Below this many candidate cores a parallel scan costs more in hand-off
// latency than the whole scan itself (a linear pass over a load array):
// scanning a few hundred cores takes well under a microsecond serially, so
// only very large (fleet-scale) hosts benefit from chunking the scan.
constexpr int kMinCoresForParallelScan = 256;

// The serial worst-fit choice over [core_begin, core_end): the feasible core
// with minimum load, lowest index breaking ties. Returns -1 if none fits.
// Socket feasibility is resolved by the caller (the range already is the
// socket's core range), so the scan body carries no affinity branch.
int BestCoreInRange(const std::vector<TimeNs>& load, TimeNs demand, TimeNs hyperperiod,
                    int core_begin, int core_end) {
  int best = -1;
  for (int core = core_begin; core < core_end; ++core) {
    const auto c = static_cast<std::size_t>(core);
    if (load[c] + demand > hyperperiod) {
      continue;
    }
    if (best == -1 || load[c] < load[static_cast<std::size_t>(best)]) {
      best = core;
    }
  }
  return best;
}

}  // namespace

TimeNs SpareCapacity(const std::vector<PeriodicTask>& core_tasks, TimeNs hyperperiod) {
  return hyperperiod - TotalDemand(core_tasks, hyperperiod);
}

PartitionResult WorstFitDecreasing(const std::vector<PeriodicTask>& tasks, int num_cores,
                                   TimeNs hyperperiod, ThreadPool* pool) {
  return WorstFitDecreasingNuma(tasks, {}, num_cores, /*cores_per_socket=*/num_cores,
                                hyperperiod, pool);
}

PartitionResult WorstFitDecreasingNuma(const std::vector<PeriodicTask>& tasks,
                                       const std::map<VcpuId, int>& socket_of,
                                       int num_cores, int cores_per_socket,
                                       TimeNs hyperperiod, ThreadPool* pool) {
  TABLEAU_CHECK(num_cores >= 0);
  TABLEAU_CHECK(cores_per_socket > 0);
  PartitionResult result;
  result.core_tasks.resize(static_cast<std::size_t>(num_cores));
  if (tasks.empty()) {
    // Nothing to place (e.g. every vCPU landed on a dedicated core): an
    // empty assignment is trivially complete, even over zero shared cores.
    result.complete = true;
    return result;
  }
  TABLEAU_CHECK(num_cores > 0);

  std::vector<PeriodicTask> sorted = tasks;
  std::sort(sorted.begin(), sorted.end(), [&](const PeriodicTask& a, const PeriodicTask& b) {
    const TimeNs da = a.DemandPerHyperperiod(hyperperiod);
    const TimeNs db = b.DemandPerHyperperiod(hyperperiod);
    if (da != db) return da > db;
    return a.vcpu < b.vcpu;  // Deterministic order for equal demands.
  });

  const int max_chunks =
      pool != nullptr && pool->num_threads() > 1 ? pool->num_threads() : 1;
  std::vector<int> chunk_best(static_cast<std::size_t>(max_chunks));

  std::vector<TimeNs> load(static_cast<std::size_t>(num_cores), 0);
  for (const PeriodicTask& task : sorted) {
    const TimeNs demand = task.DemandPerHyperperiod(hyperperiod);
    int socket = -1;
    if (const auto it = socket_of.find(task.vcpu); it != socket_of.end()) {
      socket = it->second;
    }
    // A socket-constrained task only ever considers its socket's core range;
    // off-socket cores are excluded up front rather than scanned and skipped.
    const int scan_begin = socket >= 0 ? std::min(socket * cores_per_socket, num_cores) : 0;
    const int scan_end =
        socket >= 0 ? std::min((socket + 1) * cores_per_socket, num_cores) : num_cores;
    const int scan_width = scan_end - scan_begin;
    int best = -1;
    if (scan_width < kMinCoresForParallelScan || max_chunks <= 1) {
      best = BestCoreInRange(load, demand, hyperperiod, scan_begin, scan_end);
    } else {
      // Each chunk evaluates a contiguous sub-range; the in-order reduction
      // reproduces the serial min-load / lowest-index choice exactly.
      const int num_chunks = std::min(max_chunks, scan_width);
      ParallelFor(pool, static_cast<std::size_t>(num_chunks),
                  [&](std::size_t chunk) {
                    const int begin =
                        scan_begin + static_cast<int>(chunk) * scan_width / num_chunks;
                    const int end = scan_begin +
                                    static_cast<int>(chunk + 1) * scan_width / num_chunks;
                    chunk_best[chunk] =
                        BestCoreInRange(load, demand, hyperperiod, begin, end);
                  },
                  /*grain=*/1);
      for (int k = 0; k < num_chunks; ++k) {
        const int candidate = chunk_best[static_cast<std::size_t>(k)];
        if (candidate == -1) {
          continue;
        }
        if (best == -1 || load[static_cast<std::size_t>(candidate)] <
                              load[static_cast<std::size_t>(best)]) {
          best = candidate;
        }
      }
    }
    if (best == -1) {
      result.unassigned.push_back(task);
    } else {
      const auto b = static_cast<std::size_t>(best);
      result.core_tasks[b].push_back(task);
      load[b] += demand;
    }
  }
  result.complete = result.unassigned.empty();
  return result;
}

}  // namespace tableau
