#include "src/rt/partition.h"

#include <algorithm>

#include "src/common/check.h"

namespace tableau {

TimeNs SpareCapacity(const std::vector<PeriodicTask>& core_tasks, TimeNs hyperperiod) {
  return hyperperiod - TotalDemand(core_tasks, hyperperiod);
}

PartitionResult WorstFitDecreasing(const std::vector<PeriodicTask>& tasks, int num_cores,
                                   TimeNs hyperperiod) {
  return WorstFitDecreasingNuma(tasks, {}, num_cores, /*cores_per_socket=*/num_cores,
                                hyperperiod);
}

PartitionResult WorstFitDecreasingNuma(const std::vector<PeriodicTask>& tasks,
                                       const std::map<VcpuId, int>& socket_of,
                                       int num_cores, int cores_per_socket,
                                       TimeNs hyperperiod) {
  TABLEAU_CHECK(num_cores > 0);
  TABLEAU_CHECK(cores_per_socket > 0);
  PartitionResult result;
  result.core_tasks.resize(static_cast<std::size_t>(num_cores));

  std::vector<PeriodicTask> sorted = tasks;
  std::sort(sorted.begin(), sorted.end(), [&](const PeriodicTask& a, const PeriodicTask& b) {
    const TimeNs da = a.DemandPerHyperperiod(hyperperiod);
    const TimeNs db = b.DemandPerHyperperiod(hyperperiod);
    if (da != db) return da > db;
    return a.vcpu < b.vcpu;  // Deterministic order for equal demands.
  });

  std::vector<TimeNs> load(static_cast<std::size_t>(num_cores), 0);
  for (const PeriodicTask& task : sorted) {
    const TimeNs demand = task.DemandPerHyperperiod(hyperperiod);
    int socket = -1;
    if (const auto it = socket_of.find(task.vcpu); it != socket_of.end()) {
      socket = it->second;
    }
    int best = -1;
    for (int core = 0; core < num_cores; ++core) {
      if (socket >= 0 && core / cores_per_socket != socket) {
        continue;  // NUMA affinity constraint.
      }
      const auto c = static_cast<std::size_t>(core);
      if (load[c] + demand > hyperperiod) {
        continue;
      }
      if (best == -1 || load[c] < load[static_cast<std::size_t>(best)]) {
        best = core;
      }
    }
    if (best == -1) {
      result.unassigned.push_back(task);
    } else {
      const auto b = static_cast<std::size_t>(best);
      result.core_tasks[b].push_back(task);
      load[b] += demand;
    }
  }
  result.complete = result.unassigned.empty();
  return result;
}

}  // namespace tableau
