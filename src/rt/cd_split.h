// C=D semi-partitioning (Burns et al., "Partitioned EDF Scheduling for
// Multiprocessors Using a C=D Task Splitting Scheme"; paper Sec. 5,
// "Semi-partitioning").
//
// A task that fits on no single core is broken into subtasks with precedence
// constraints. All subtasks except the last are *zero-laxity* pieces
// (deadline == cost): a zero-laxity piece that meets its deadline necessarily
// executes contiguously in [k*T + offset, k*T + offset + C), so consecutive
// pieces occupy disjoint windows and never run in parallel even though they
// live on different cores. The final piece carries the leftover budget with
// deadline T - offset, and is scheduled by plain EDF on its host core.
//
// The largest schedulable zero-laxity budget on a core is found by binary
// search over multiples of the allocation granularity. Each probe's
// schedulability question goes through the analytic admission ladder
// (src/rt/admission.h) — utilization, density, then QPA — and only falls
// back to the exact EDF table simulation when the cheap tests are
// inconclusive; the verdict is identical either way, so the chosen split is
// exactly the one a simulation-only search would pick.
#ifndef SRC_RT_CD_SPLIT_H_
#define SRC_RT_CD_SPLIT_H_

#include <vector>

#include "src/common/time.h"
#include "src/rt/admission.h"
#include "src/rt/periodic_task.h"

namespace tableau {

class ThreadPool;

struct SemiPartitionResult {
  // True if every task was placed (possibly split).
  bool complete = false;
  std::vector<std::vector<PeriodicTask>> core_tasks;
  // Tasks that could not be placed even with splitting (cluster-stage input).
  std::vector<PeriodicTask> unassigned;
  // Number of tasks that required splitting.
  int num_split_tasks = 0;
};

// Attempts to place `task` (implicit-deadline, offset 0) into the per-core
// assignment by C=D splitting, modifying `core_tasks` on success. Each core
// hosts at most one piece of the task. `granularity` is the minimum piece
// size (the paper's 100 us enforceability threshold). A non-null `pool`
// runs the per-core schedulability probes and the split-point search
// concurrently; the probes it consumes are the exact sequence the serial
// search would evaluate, so the resulting split is identical. A non-null
// `tally` counts which admission rung decided each probe.
bool CdSplitTask(const PeriodicTask& task, std::vector<std::vector<PeriodicTask>>& core_tasks,
                 TimeNs hyperperiod, TimeNs granularity, ThreadPool* pool = nullptr,
                 AdmissionTally* tally = nullptr);

// Full semi-partitioning pipeline: worst-fit-decreasing partitioning followed
// by C=D splitting of the leftovers.
SemiPartitionResult SemiPartition(const std::vector<PeriodicTask>& tasks, int num_cores,
                                  TimeNs hyperperiod, TimeNs granularity,
                                  ThreadPool* pool = nullptr,
                                  AdmissionTally* tally = nullptr);

}  // namespace tableau

#endif  // SRC_RT_CD_SPLIT_H_
