// Analytic admission fast-path for uniprocessor EDF task sets (ROADMAP item
// "make the parallel planner actually win": prune expensive EDF table
// simulations with a schedcat-style ladder of cheap schedulability tests).
//
// The ladder runs cheapest-first and stops at the first rung that *decides*:
//
//   1. kUtilization — exact necessary test: saturating total demand over the
//      hyperperiod > capacity rejects. For all-implicit-deadline sets (the
//      common fully partitioned case) demand <= capacity is also sufficient
//      on a uniprocessor, so the same rung accepts outright.
//   2. kDensity — sufficient test: sum(C_i / D_i) <= 1 accepts any
//      constrained-deadline set regardless of release offsets. Evaluated in
//      long double with a conservative epsilon so float rounding can never
//      turn a boundary-unschedulable set into an accept.
//   3. kQpa — Quick Processor-demand Analysis on the synchronous transform
//      (offsets dropped; synchronous release is the worst case, so an accept
//      is sound for any offsets). Exact for offset-free sets, where a reject
//      also decides.
//   4. kSimulation — full EDF simulation over the hyperperiod: exact for
//      arbitrary offsets. Only reached when every analytic rung was
//      inconclusive.
//
// The full ladder's verdict is always identical to EdfSchedulable's (the
// differential property test tests/check_admission_test.cc fuzzes this);
// the rungs only change how much it costs to reach that verdict.
#ifndef SRC_RT_ADMISSION_H_
#define SRC_RT_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/time.h"
#include "src/rt/periodic_task.h"

namespace tableau {

enum class AdmissionRung {
  kUtilization = 0,
  kDensity = 1,
  kQpa = 2,
  kSimulation = 3,
};

inline const char* AdmissionRungName(AdmissionRung rung) {
  switch (rung) {
    case AdmissionRung::kUtilization:
      return "utilization";
    case AdmissionRung::kDensity:
      return "density";
    case AdmissionRung::kQpa:
      return "qpa";
    case AdmissionRung::kSimulation:
      return "simulation";
  }
  return "?";
}

struct AdmissionDecision {
  bool schedulable = false;
  AdmissionRung rung = AdmissionRung::kSimulation;  // The rung that decided.
};

// Thread-safe per-rung decision counters. The planner owns one per solve and
// threads it through the pipeline (C=D probes run on pool workers), then
// folds the totals into PlanResult::admission and the planner.admission.*
// metrics.
struct AdmissionTally {
  std::atomic<std::int64_t> by_rung[4] = {};

  void Record(AdmissionRung rung) {
    by_rung[static_cast<int>(rung)].fetch_add(1, std::memory_order_relaxed);
  }
  std::int64_t Count(AdmissionRung rung) const {
    return by_rung[static_cast<int>(rung)].load(std::memory_order_relaxed);
  }
};

// Analytic rungs only (1-3): returns the decision, or nullopt when every
// cheap test is inconclusive and only a full simulation can decide. Never
// simulates. All task periods must divide `hyperperiod`.
std::optional<AdmissionDecision> AdmitCoreAnalytic(
    const std::vector<PeriodicTask>& tasks, TimeNs hyperperiod);

// The full ladder: analytic rungs first, EDF simulation as the final rung.
// The verdict is exact (identical to EdfSchedulable). Records the deciding
// rung into `tally` when non-null.
AdmissionDecision AdmitCore(const std::vector<PeriodicTask>& tasks, TimeNs hyperperiod,
                            AdmissionTally* tally = nullptr);

}  // namespace tableau

#endif  // SRC_RT_ADMISSION_H_
