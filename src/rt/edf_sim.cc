#include "src/rt/edf_sim.h"

#include <algorithm>
#include <queue>

#include "src/common/check.h"

namespace tableau {
namespace {

struct Job {
  TimeNs release = 0;
  TimeNs deadline = 0;
  TimeNs laxity = 0;  // D - C at release; 0 for C=D subtasks.
  TimeNs remaining = 0;
  VcpuId vcpu = kIdleVcpu;
};

// Heap entry; keys are immutable over the job's lifetime so the heap stays
// consistent while `remaining` is decremented in the side array.
struct HeapEntry {
  TimeNs deadline;
  TimeNs laxity;
  VcpuId vcpu;
  std::size_t job_index;
};

struct HeapCompare {
  // std::priority_queue is a max-heap; invert to get earliest-deadline-first
  // with smaller laxity and then smaller vCPU id breaking ties.
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.deadline != b.deadline) return a.deadline > b.deadline;
    if (a.laxity != b.laxity) return a.laxity > b.laxity;
    if (a.vcpu != b.vcpu) return a.vcpu > b.vcpu;
    return a.job_index > b.job_index;
  }
};

EdfSimResult Simulate(const std::vector<PeriodicTask>& tasks, TimeNs hyperperiod,
                      bool record_allocations) {
  EdfSimResult result;

  std::vector<Job> jobs;
  for (const PeriodicTask& task : tasks) {
    TABLEAU_CHECK_MSG(task.period > 0 && hyperperiod % task.period == 0,
                      "task period %lld must divide hyperperiod %lld",
                      static_cast<long long>(task.period),
                      static_cast<long long>(hyperperiod));
    TABLEAU_CHECK(task.cost > 0 && task.cost <= task.deadline);
    TABLEAU_CHECK(task.offset >= 0 && task.offset + task.deadline <= task.period);
    const TimeNs num_jobs = hyperperiod / task.period;
    for (TimeNs k = 0; k < num_jobs; ++k) {
      Job job;
      job.release = k * task.period + task.offset;
      job.deadline = job.release + task.deadline;
      job.laxity = task.deadline - task.cost;
      job.remaining = task.cost;
      job.vcpu = task.vcpu;
      jobs.push_back(job);
    }
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const Job& a, const Job& b) { return a.release < b.release; });

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCompare> ready;
  std::size_t next_release_index = 0;
  TimeNs now = 0;

  auto release_up_to = [&](TimeNs t) {
    while (next_release_index < jobs.size() && jobs[next_release_index].release <= t) {
      const Job& j = jobs[next_release_index];
      ready.push(HeapEntry{j.deadline, j.laxity, j.vcpu, next_release_index});
      ++next_release_index;
    }
  };

  auto record = [&](VcpuId vcpu, TimeNs start, TimeNs end) {
    if (!record_allocations || start == end) {
      return;
    }
    if (!result.allocations.empty() && result.allocations.back().vcpu == vcpu &&
        result.allocations.back().end == start) {
      result.allocations.back().end = end;
    } else {
      result.allocations.push_back(Allocation{vcpu, start, end});
    }
  };

  release_up_to(now);
  while (now < hyperperiod) {
    if (ready.empty()) {
      if (next_release_index >= jobs.size()) {
        break;  // No more work: the rest of the table is idle.
      }
      now = jobs[next_release_index].release;
      release_up_to(now);
      continue;
    }
    const HeapEntry top = ready.top();
    Job& job = jobs[top.job_index];
    const TimeNs next_release = next_release_index < jobs.size()
                                    ? jobs[next_release_index].release
                                    : kTimeNever;
    const TimeNs run_until = std::min(now + job.remaining, next_release);
    record(job.vcpu, now, run_until);
    job.remaining -= run_until - now;
    now = run_until;
    if (job.remaining == 0) {
      ready.pop();
      if (now > job.deadline) {
        result.schedulable = false;
        result.missed_vcpu = job.vcpu;
        result.missed_deadline = job.deadline;
        return result;
      }
    }
    release_up_to(now);
  }

  // Cyclicity requires all work released in [0, H) to be complete by H.
  if (!ready.empty()) {
    const HeapEntry top = ready.top();
    result.schedulable = false;
    result.missed_vcpu = jobs[top.job_index].vcpu;
    result.missed_deadline = jobs[top.job_index].deadline;
    return result;
  }
  result.schedulable = true;
  return result;
}

}  // namespace

EdfSimResult SimulateEdf(const std::vector<PeriodicTask>& tasks, TimeNs hyperperiod) {
  return Simulate(tasks, hyperperiod, /*record_allocations=*/true);
}

bool EdfSchedulable(const std::vector<PeriodicTask>& tasks, TimeNs hyperperiod) {
  return Simulate(tasks, hyperperiod, /*record_allocations=*/false).schedulable;
}

}  // namespace tableau
