// Hyperperiod and candidate-period selection (Sec. 5, "Bounding table
// lengths").
//
// The paper fixes the maximum hyperperiod to 102,702,600 ns (~102 ms), chosen
// because it has many integer divisors above the 100 us enforceability
// threshold. Candidate periods are drawn from those divisors so that any mix
// of periods yields a table no longer than the hyperperiod.
#ifndef SRC_RT_HYPERPERIOD_H_
#define SRC_RT_HYPERPERIOD_H_

#include <optional>
#include <vector>

#include "src/common/time.h"
#include "src/rt/periodic_task.h"

namespace tableau {

// The paper's maximum hyperperiod: 102,702,600 ns.
inline constexpr TimeNs kHyperperiodNs = 102'702'600;

// Minimum enforceable period / allocation granularity: 100 us.
inline constexpr TimeNs kMinPeriodNs = 100 * kMicrosecond;

// Candidate periods: all divisors of kHyperperiodNs that are >= kMinPeriodNs,
// in descending order. Computed once on first use.
const std::vector<TimeNs>& CandidatePeriods();

// Result of mapping a (U, L) vCPU request onto a periodic task.
struct TaskMapping {
  PeriodicTask task;
  // 2 * (T - C): the worst-case blackout bound implied by the chosen (C, T).
  TimeNs blackout_bound = 0;
  // True if blackout_bound <= the requested latency goal. False when the goal
  // is too tight to honor with >= 100 us periods; the mapping is then the
  // best-effort smallest candidate period.
  bool latency_goal_met = false;
};

// Maps a vCPU request to a periodic task: the largest candidate period T with
// 2*(1-U)*T <= L, and budget C = ceil(U*T) (so the effective utilization is
// >= U). Requests with U >= 1 must be handled by the caller (dedicated core)
// and are rejected here. Returns std::nullopt for non-positive U or L.
std::optional<TaskMapping> MapRequestToTask(const VcpuRequest& request);

}  // namespace tableau

#endif  // SRC_RT_HYPERPERIOD_H_
