// Worst-fit-decreasing partitioning of periodic tasks onto cores (Sec. 5,
// "Partitioning").
//
// Tasks are sorted by utilization (exact per-hyperperiod demand) in
// descending order, and each is assigned to the least-utilized core with
// enough remaining capacity. For implicit-deadline tasks on a uniprocessor,
// total demand <= hyperperiod is exactly EDF-schedulability, so no separate
// test is needed at this stage. Tasks that fit on no core are returned for
// the semi-partitioning (C=D) stage.
#ifndef SRC_RT_PARTITION_H_
#define SRC_RT_PARTITION_H_

#include <map>
#include <vector>

#include "src/common/time.h"
#include "src/rt/periodic_task.h"

namespace tableau {

class ThreadPool;

struct PartitionResult {
  // True if every task was assigned (unassigned is empty).
  bool complete = false;
  // Per-core task assignments, size == num_cores.
  std::vector<std::vector<PeriodicTask>> core_tasks;
  // Tasks that fit on no single core, in worst-fit-decreasing order.
  std::vector<PeriodicTask> unassigned;
};

// Partitions implicit-deadline tasks onto `num_cores` cores using worst-fit
// decreasing. All task periods must divide `hyperperiod`. A non-null `pool`
// chunks the per-task candidate-core scan across workers, but only once the
// scanned range is large enough (hundreds of cores) for the fan-out to beat
// a serial linear pass; the assignment is always identical to the serial one
// (the reduction preserves the serial min-load / lowest-index tie-break).
PartitionResult WorstFitDecreasing(const std::vector<PeriodicTask>& tasks, int num_cores,
                                   TimeNs hyperperiod, ThreadPool* pool = nullptr);

// NUMA-aware variant: `socket_of` maps a vCPU id to its required socket (-1
// or absent = anywhere), and cores [s*cores_per_socket, (s+1)*cores_per_socket)
// belong to socket s. Constrained tasks only consider cores of their socket.
PartitionResult WorstFitDecreasingNuma(const std::vector<PeriodicTask>& tasks,
                                       const std::map<VcpuId, int>& socket_of,
                                       int num_cores, int cores_per_socket,
                                       TimeNs hyperperiod, ThreadPool* pool = nullptr);

// Remaining capacity (ns per hyperperiod) of a core's current assignment.
TimeNs SpareCapacity(const std::vector<PeriodicTask>& core_tasks, TimeNs hyperperiod);

}  // namespace tableau

#endif  // SRC_RT_PARTITION_H_
