#include "src/rt/hyperperiod.h"

#include <cmath>

#include "src/common/math_util.h"

namespace tableau {

const std::vector<TimeNs>& CandidatePeriods() {
  static const std::vector<TimeNs> kPeriods = DivisorsAtLeast(kHyperperiodNs, kMinPeriodNs);
  return kPeriods;
}

std::optional<TaskMapping> MapRequestToTask(const VcpuRequest& request) {
  if (request.utilization <= 0.0 || request.utilization >= 1.0 ||
      request.latency_goal <= 0) {
    return std::nullopt;
  }
  const double u = request.utilization;
  const std::vector<TimeNs>& candidates = CandidatePeriods();

  TaskMapping mapping;
  mapping.latency_goal_met = false;
  TimeNs chosen = 0;
  // Candidates are in descending order; pick the first (largest) period whose
  // blackout bound 2*(1-U)*T fits within the latency goal.
  for (const TimeNs t : candidates) {
    const double blackout = 2.0 * (1.0 - u) * static_cast<double>(t);
    if (blackout <= static_cast<double>(request.latency_goal)) {
      chosen = t;
      mapping.latency_goal_met = true;
      break;
    }
  }
  if (chosen == 0) {
    // Latency goal unachievable with enforceable periods; fall back to the
    // smallest candidate period (best effort).
    chosen = candidates.back();
  }

  TimeNs cost = static_cast<TimeNs>(std::ceil(u * static_cast<double>(chosen)));
  if (cost >= chosen) {
    cost = chosen - 1;  // Keep U < 1 on a shared core; U == 1 is handled by the caller.
  }
  if (cost <= 0) {
    cost = 1;
  }
  mapping.task = PeriodicTask::Implicit(request.vcpu, cost, chosen);
  mapping.blackout_bound = 2 * (chosen - cost);
  if (mapping.blackout_bound > request.latency_goal) {
    mapping.latency_goal_met = false;
  }
  return mapping;
}

TimeNs TotalDemand(const std::vector<PeriodicTask>& tasks, TimeNs hyperperiod) {
  TimeNs total = 0;
  for (const PeriodicTask& t : tasks) {
    total += t.DemandPerHyperperiod(hyperperiod);
  }
  return total;
}

}  // namespace tableau
