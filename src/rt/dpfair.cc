#include "src/rt/dpfair.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/math_util.h"

namespace tableau {
namespace {

// Appends [start, end) for `vcpu` to `core`, merging with the previous
// allocation when contiguous.
void AppendAllocation(std::vector<Allocation>& core, VcpuId vcpu, TimeNs start, TimeNs end) {
  if (start == end) {
    return;
  }
  if (!core.empty() && core.back().vcpu == vcpu && core.back().end == start) {
    core.back().end = end;
  } else {
    core.push_back(Allocation{vcpu, start, end});
  }
}

}  // namespace

ClusterScheduleResult DpFairSchedule(const std::vector<PeriodicTask>& tasks, int num_cores,
                                     TimeNs hyperperiod) {
  ClusterScheduleResult result;
  result.core_allocations.resize(static_cast<std::size_t>(num_cores));
  if (tasks.empty()) {
    result.success = true;
    return result;
  }

  TimeNs total_demand = 0;
  for (const PeriodicTask& task : tasks) {
    TABLEAU_CHECK(task.offset == 0 && task.deadline == task.period);
    TABLEAU_CHECK(hyperperiod % task.period == 0);
    if (task.cost >= task.period) {
      return result;  // U >= 1 tasks get dedicated cores before this stage.
    }
    total_demand += task.DemandPerHyperperiod(hyperperiod);
  }
  if (total_demand > static_cast<TimeNs>(num_cores) * hyperperiod) {
    return result;
  }

  // Frame boundaries: every job deadline (== period boundary) in (0, H].
  std::vector<TimeNs> boundaries;
  boundaries.push_back(0);
  for (const PeriodicTask& task : tasks) {
    for (TimeNs t = task.period; t <= hyperperiod; t += task.period) {
      boundaries.push_back(t);
    }
  }
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()), boundaries.end());
  TABLEAU_CHECK(boundaries.back() == hyperperiod);

  const std::size_t n = tasks.size();
  std::vector<TimeNs> done(n, 0);  // Total service received so far per task.

  for (std::size_t f = 0; f + 1 < boundaries.size(); ++f) {
    const TimeNs a = boundaries[f];
    const TimeNs b = boundaries[f + 1];
    const TimeNs len = b - a;
    const TimeNs capacity = static_cast<TimeNs>(num_cores) * len;

    // Target cumulative service by `b` is floor(C*b/T); at a task's own
    // deadline this is exactly k*C, so meeting targets meets all deadlines.
    std::vector<TimeNs> alloc(n, 0);
    TimeNs sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const TimeNs target = MulDivFloor(tasks[i].cost, b, tasks[i].period);
      alloc[i] = std::max<TimeNs>(0, target - done[i]);
      if (alloc[i] > len) {
        return result;  // Rounding debt exceeded one frame; widen the cluster.
      }
      sum += alloc[i];
    }

    // Integer rounding can oversubscribe the frame by < n nanoseconds; defer
    // the excess to later frames for tasks whose own deadline is not at `b`.
    if (sum > capacity) {
      TimeNs excess = sum - capacity;
      for (std::size_t i = 0; i < n && excess > 0; ++i) {
        if (b % tasks[i].period == 0) {
          continue;  // Hard requirement at an own deadline; cannot defer.
        }
        // Can defer down to the demand actually due at b (deadlines <= b).
        const TimeNs due = (b / tasks[i].period) * tasks[i].cost;
        const TimeNs reducible = std::min(excess, done[i] + alloc[i] - due);
        if (reducible > 0) {
          alloc[i] -= reducible;
          excess -= reducible;
        }
      }
      if (excess > 0) {
        return result;  // Unrepairable in this frame; widen the cluster.
      }
    }

    // McNaughton wrap-around layout. A task split at the core boundary gets
    // the tail of the frame on one core and the head on the next, and because
    // per-task allocation <= len those two windows never overlap in time.
    int core = 0;
    TimeNs pos = 0;
    for (std::size_t i = 0; i < n; ++i) {
      TimeNs need = alloc[i];
      done[i] += alloc[i];
      while (need > 0) {
        TABLEAU_CHECK(core < num_cores);
        const TimeNs room = len - pos;
        const TimeNs take = std::min(need, room);
        AppendAllocation(result.core_allocations[static_cast<std::size_t>(core)],
                         tasks[i].vcpu, a + pos, a + pos + take);
        pos += take;
        need -= take;
        if (pos == len) {
          ++core;
          pos = 0;
        }
      }
    }
  }

  // Final validation: every task must have received exactly its demand.
  for (std::size_t i = 0; i < n; ++i) {
    if (done[i] != tasks[i].DemandPerHyperperiod(hyperperiod)) {
      return result;
    }
  }
  result.success = true;
  return result;
}

}  // namespace tableau
