#include "src/rt/schedulability.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/math_util.h"

namespace tableau {

TimeNs DemandBound(const std::vector<PeriodicTask>& tasks, TimeNs t) {
  // Saturating accumulation: with large analysis intervals and many tasks the
  // exact demand can exceed 2^63 ns. Saturation keeps the comparison
  // `demand > t` correct (a saturated demand always exceeds any t), whereas
  // wraparound would report a tiny or negative demand and wrongly admit.
  TimeNs demand = 0;
  for (const PeriodicTask& task : tasks) {
    if (t >= task.deadline) {
      const TimeNs jobs = (t - task.deadline) / task.period + 1;
      demand = SatAdd(demand, SatMul(jobs, task.cost));
    }
  }
  return demand;
}

bool DemandBoundSchedulable(const std::vector<PeriodicTask>& tasks, TimeNs hyperperiod) {
  // Utilization precondition.
  TimeNs total = 0;
  for (const PeriodicTask& task : tasks) {
    TABLEAU_CHECK(hyperperiod % task.period == 0);
    total = SatAdd(total, SatMul(task.cost, hyperperiod / task.period));
  }
  if (total > hyperperiod) {
    return false;
  }
  // Collect all deadline points in (0, hyperperiod].
  std::vector<TimeNs> points;
  for (const PeriodicTask& task : tasks) {
    for (TimeNs d = task.deadline; d <= hyperperiod; d += task.period) {
      points.push_back(d);
      if (d > hyperperiod - task.period) {
        break;  // The next step would overflow for huge hyperperiods.
      }
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  for (const TimeNs t : points) {
    if (DemandBound(tasks, t) > t) {
      return false;
    }
  }
  return true;
}

namespace {

// Largest absolute deadline strictly smaller than `t` under synchronous
// release, or 0 if none.
TimeNs LastDeadlineBefore(const std::vector<PeriodicTask>& tasks, TimeNs t) {
  TimeNs best = 0;
  for (const PeriodicTask& task : tasks) {
    if (task.deadline >= t) {
      continue;
    }
    // Deadlines are task.deadline + k * task.period; the largest below t:
    const TimeNs k = (t - 1 - task.deadline) / task.period;
    best = std::max(best, task.deadline + k * task.period);
  }
  return best;
}

}  // namespace

bool QpaSchedulable(const std::vector<PeriodicTask>& tasks, TimeNs hyperperiod) {
  if (tasks.empty()) {
    return true;
  }
  TimeNs total = 0;
  TimeNs min_deadline = kTimeNever;
  for (const PeriodicTask& task : tasks) {
    TABLEAU_CHECK(hyperperiod % task.period == 0);
    total = SatAdd(total, SatMul(task.cost, hyperperiod / task.period));
    min_deadline = std::min(min_deadline, task.deadline);
  }
  if (total > hyperperiod) {
    return false;
  }
  // Since every period divides the hyperperiod and total demand fits in it,
  // the hyperperiod bounds the analysis interval.
  TimeNs t = LastDeadlineBefore(
      tasks, hyperperiod < kTimeNever ? hyperperiod + 1 : kTimeNever);
  while (t > min_deadline) {
    const TimeNs demand = DemandBound(tasks, t);
    if (demand > t) {
      return false;
    }
    t = demand < t ? demand : LastDeadlineBefore(tasks, t);
  }
  return DemandBound(tasks, min_deadline) <= min_deadline;
}

}  // namespace tableau
