// Analytic EDF schedulability tests, used to cross-validate the simulator in
// property tests and for fast checks during C=D binary searches.
#ifndef SRC_RT_SCHEDULABILITY_H_
#define SRC_RT_SCHEDULABILITY_H_

#include <vector>

#include "src/common/time.h"
#include "src/rt/periodic_task.h"

namespace tableau {

// Processor-demand criterion for synchronous periodic task sets with
// constrained deadlines: schedulable iff dbf(t) <= t at every absolute
// deadline t in (0, hyperperiod]. Offsets are ignored (synchronous release is
// the worst case), so for offset task sets this test is sufficient but not
// necessary.
bool DemandBoundSchedulable(const std::vector<PeriodicTask>& tasks, TimeNs hyperperiod);

// Total demand of the task set over an interval of length t under synchronous
// release (the demand bound function).
TimeNs DemandBound(const std::vector<PeriodicTask>& tasks, TimeNs t);

// Quick Processor-demand Analysis (Zhang & Burns, 2009): an exact EDF test
// for synchronous constrained-deadline sets that iterates t <- dbf(t)
// downward from the last deadline before the analysis bound instead of
// enumerating every deadline. Equivalent to DemandBoundSchedulable but
// typically visits far fewer points; used to cross-validate the simulator
// and for fast feasibility pre-checks in C=D binary searches.
bool QpaSchedulable(const std::vector<PeriodicTask>& tasks, TimeNs hyperperiod);

}  // namespace tableau

#endif  // SRC_RT_SCHEDULABILITY_H_
