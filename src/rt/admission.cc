#include "src/rt/admission.h"

#include "src/common/check.h"
#include "src/common/math_util.h"
#include "src/rt/edf_sim.h"
#include "src/rt/schedulability.h"

namespace tableau {
namespace {

// Density-test epsilon: the long double sum of n <= a few dozen C/D ratios
// carries at most ~n * 2^-63 relative error, so requiring sum <= 1 - 1e-12
// leaves orders of magnitude of margin — a set whose exact density exceeds 1
// can never be accepted here, it merely falls through to the next rung.
constexpr long double kDensityMargin = 1e-12L;

}  // namespace

std::optional<AdmissionDecision> AdmitCoreAnalytic(
    const std::vector<PeriodicTask>& tasks, TimeNs hyperperiod) {
  if (tasks.empty()) {
    return AdmissionDecision{true, AdmissionRung::kUtilization};
  }

  // Rung 1: utilization. Saturating demand accumulation (see SatAdd): an
  // over-2^63 demand must read as "over capacity", not wrap negative.
  TimeNs total = 0;
  bool all_implicit = true;
  bool any_offset = false;
  for (const PeriodicTask& task : tasks) {
    TABLEAU_CHECK(task.period > 0 && hyperperiod % task.period == 0);
    total = SatAdd(total, SatMul(task.cost, hyperperiod / task.period));
    all_implicit = all_implicit && task.offset == 0 && task.deadline == task.period;
    any_offset = any_offset || task.offset != 0;
  }
  if (total > hyperperiod) {
    // Exact necessary condition: no schedule can deliver more than the
    // hyperperiod per core.
    return AdmissionDecision{false, AdmissionRung::kUtilization};
  }
  if (all_implicit) {
    // EDF on a uniprocessor schedules any implicit-deadline set with
    // utilization <= 1 (Liu & Layland): the same rung decides both ways.
    return AdmissionDecision{true, AdmissionRung::kUtilization};
  }

  // Rung 2: density. sum(C/D) <= 1 is sufficient for constrained deadlines
  // under any release pattern (each job fits in its own scheduling window).
  long double density = 0.0L;
  for (const PeriodicTask& task : tasks) {
    TABLEAU_CHECK(task.deadline > 0);
    density += static_cast<long double>(task.cost) /
               static_cast<long double>(task.deadline);
  }
  if (density <= 1.0L - kDensityMargin) {
    return AdmissionDecision{true, AdmissionRung::kDensity};
  }

  // Rung 3: QPA on the synchronous transform (DemandBound ignores offsets).
  // Synchronous release is the worst case, so an accept covers any offsets;
  // for offset-free sets QPA is exact and a reject decides too.
  if (QpaSchedulable(tasks, hyperperiod)) {
    return AdmissionDecision{true, AdmissionRung::kQpa};
  }
  if (!any_offset) {
    return AdmissionDecision{false, AdmissionRung::kQpa};
  }

  // Offsets may still save the set (e.g. disjoint C=D pieces): inconclusive.
  return std::nullopt;
}

AdmissionDecision AdmitCore(const std::vector<PeriodicTask>& tasks, TimeNs hyperperiod,
                            AdmissionTally* tally) {
  AdmissionDecision decision;
  if (const std::optional<AdmissionDecision> analytic =
          AdmitCoreAnalytic(tasks, hyperperiod)) {
    decision = *analytic;
  } else {
    decision = AdmissionDecision{EdfSchedulable(tasks, hyperperiod),
                                 AdmissionRung::kSimulation};
  }
  if (tally != nullptr) {
    tally->Record(decision.rung);
  }
  return decision;
}

}  // namespace tableau
