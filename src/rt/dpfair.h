// Localized optimal multiprocessor scheduling for core clusters (Sec. 5,
// "Localized optimal scheduling").
//
// When partitioning and C=D splitting both fail, the planner merges
// neighbouring cores into a cluster and schedules the remaining tasks
// optimally. We use the DP-Fair family approach: time is sliced into frames
// delimited by consecutive job deadlines (all period boundaries), each task
// receives its proportional fluid allocation per frame (with exact
// Bresenham-style integer accounting so every job receives exactly C by its
// deadline), and allocations within a frame are laid out with McNaughton's
// wrap-around algorithm, which guarantees that the two pieces of a wrapped
// task never overlap in time.
#ifndef SRC_RT_DPFAIR_H_
#define SRC_RT_DPFAIR_H_

#include <vector>

#include "src/common/time.h"
#include "src/rt/edf_sim.h"
#include "src/rt/periodic_task.h"

namespace tableau {

struct ClusterScheduleResult {
  bool success = false;
  // Per-cluster-core allocation lists (indices 0..num_cores-1), time-ordered,
  // non-overlapping, covering [0, hyperperiod).
  std::vector<std::vector<Allocation>> core_allocations;
};

// Schedules implicit-deadline tasks on a cluster of `num_cores` cores over
// one hyperperiod. Requires every task utilization < 1 and total demand
// <= num_cores * hyperperiod; returns success == false otherwise (or in the
// measure-zero case where integer rounding cannot be repaired, which the
// caller handles by widening the cluster).
ClusterScheduleResult DpFairSchedule(const std::vector<PeriodicTask>& tasks, int num_cores,
                                     TimeNs hyperperiod);

}  // namespace tableau

#endif  // SRC_RT_DPFAIR_H_
