# Empty dependencies file for tableau_runtime_test.
# This may be replaced when dependencies are built.
