file(REMOVE_RECURSE
  "CMakeFiles/tableau_runtime_test.dir/tableau_runtime_test.cc.o"
  "CMakeFiles/tableau_runtime_test.dir/tableau_runtime_test.cc.o.d"
  "tableau_runtime_test"
  "tableau_runtime_test.pdb"
  "tableau_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableau_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
