# Empty dependencies file for latency_profile_test.
# This may be replaced when dependencies are built.
