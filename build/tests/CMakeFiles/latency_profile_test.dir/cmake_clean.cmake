file(REMOVE_RECURSE
  "CMakeFiles/latency_profile_test.dir/latency_profile_test.cc.o"
  "CMakeFiles/latency_profile_test.dir/latency_profile_test.cc.o.d"
  "latency_profile_test"
  "latency_profile_test.pdb"
  "latency_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
