file(REMOVE_RECURSE
  "CMakeFiles/incremental_plan_test.dir/incremental_plan_test.cc.o"
  "CMakeFiles/incremental_plan_test.dir/incremental_plan_test.cc.o.d"
  "incremental_plan_test"
  "incremental_plan_test.pdb"
  "incremental_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
