# Empty dependencies file for incremental_plan_test.
# This may be replaced when dependencies are built.
