
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/harness_test.cc" "tests/CMakeFiles/harness_test.dir/harness_test.cc.o" "gcc" "tests/CMakeFiles/harness_test.dir/harness_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/tableau_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/schedulers/CMakeFiles/tableau_schedulers.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tableau_core.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/tableau_table.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tableau_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/hypervisor/CMakeFiles/tableau_hypervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tableau_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/tableau_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tableau_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tableau_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
