file(REMOVE_RECURSE
  "CMakeFiles/table_switch_trace_test.dir/table_switch_trace_test.cc.o"
  "CMakeFiles/table_switch_trace_test.dir/table_switch_trace_test.cc.o.d"
  "table_switch_trace_test"
  "table_switch_trace_test.pdb"
  "table_switch_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_switch_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
