# Empty compiler generated dependencies file for table_switch_trace_test.
# This may be replaced when dependencies are built.
