file(REMOVE_RECURSE
  "CMakeFiles/dispatcher_test.dir/dispatcher_test.cc.o"
  "CMakeFiles/dispatcher_test.dir/dispatcher_test.cc.o.d"
  "dispatcher_test"
  "dispatcher_test.pdb"
  "dispatcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dispatcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
