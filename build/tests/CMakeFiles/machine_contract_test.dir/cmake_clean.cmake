file(REMOVE_RECURSE
  "CMakeFiles/machine_contract_test.dir/machine_contract_test.cc.o"
  "CMakeFiles/machine_contract_test.dir/machine_contract_test.cc.o.d"
  "machine_contract_test"
  "machine_contract_test.pdb"
  "machine_contract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
