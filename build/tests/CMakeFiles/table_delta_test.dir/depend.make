# Empty dependencies file for table_delta_test.
# This may be replaced when dependencies are built.
