file(REMOVE_RECURSE
  "CMakeFiles/table_delta_test.dir/table_delta_test.cc.o"
  "CMakeFiles/table_delta_test.dir/table_delta_test.cc.o.d"
  "table_delta_test"
  "table_delta_test.pdb"
  "table_delta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_delta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
