# Empty dependencies file for coschedule_test.
# This may be replaced when dependencies are built.
