file(REMOVE_RECURSE
  "CMakeFiles/coschedule_test.dir/coschedule_test.cc.o"
  "CMakeFiles/coschedule_test.dir/coschedule_test.cc.o.d"
  "coschedule_test"
  "coschedule_test.pdb"
  "coschedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coschedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
