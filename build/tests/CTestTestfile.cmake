# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/rt_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/dispatcher_test[1]_include.cmake")
include("/root/repo/build/tests/schedulers_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_plan_test[1]_include.cmake")
include("/root/repo/build/tests/peephole_test[1]_include.cmake")
include("/root/repo/build/tests/plan_cache_test[1]_include.cmake")
include("/root/repo/build/tests/numa_test[1]_include.cmake")
include("/root/repo/build/tests/tableau_runtime_test[1]_include.cmake")
include("/root/repo/build/tests/coschedule_test[1]_include.cmake")
include("/root/repo/build/tests/cfs_test[1]_include.cmake")
include("/root/repo/build/tests/gang_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/table_delta_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/machine_contract_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/table_switch_trace_test[1]_include.cmake")
include("/root/repo/build/tests/latency_profile_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_extra_test[1]_include.cmake")
