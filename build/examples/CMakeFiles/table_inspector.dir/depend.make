# Empty dependencies file for table_inspector.
# This may be replaced when dependencies are built.
