file(REMOVE_RECURSE
  "CMakeFiles/table_inspector.dir/table_inspector.cpp.o"
  "CMakeFiles/table_inspector.dir/table_inspector.cpp.o.d"
  "table_inspector"
  "table_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
