file(REMOVE_RECURSE
  "CMakeFiles/latency_sla.dir/latency_sla.cpp.o"
  "CMakeFiles/latency_sla.dir/latency_sla.cpp.o.d"
  "latency_sla"
  "latency_sla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_sla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
