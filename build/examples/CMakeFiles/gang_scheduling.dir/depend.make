# Empty dependencies file for gang_scheduling.
# This may be replaced when dependencies are built.
