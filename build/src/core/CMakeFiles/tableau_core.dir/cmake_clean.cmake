file(REMOVE_RECURSE
  "CMakeFiles/tableau_core.dir/coschedule.cc.o"
  "CMakeFiles/tableau_core.dir/coschedule.cc.o.d"
  "CMakeFiles/tableau_core.dir/dispatcher.cc.o"
  "CMakeFiles/tableau_core.dir/dispatcher.cc.o.d"
  "CMakeFiles/tableau_core.dir/peephole.cc.o"
  "CMakeFiles/tableau_core.dir/peephole.cc.o.d"
  "CMakeFiles/tableau_core.dir/plan_cache.cc.o"
  "CMakeFiles/tableau_core.dir/plan_cache.cc.o.d"
  "CMakeFiles/tableau_core.dir/planner.cc.o"
  "CMakeFiles/tableau_core.dir/planner.cc.o.d"
  "libtableau_core.a"
  "libtableau_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableau_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
