file(REMOVE_RECURSE
  "libtableau_core.a"
)
