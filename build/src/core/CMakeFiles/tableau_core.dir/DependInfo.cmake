
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/coschedule.cc" "src/core/CMakeFiles/tableau_core.dir/coschedule.cc.o" "gcc" "src/core/CMakeFiles/tableau_core.dir/coschedule.cc.o.d"
  "/root/repo/src/core/dispatcher.cc" "src/core/CMakeFiles/tableau_core.dir/dispatcher.cc.o" "gcc" "src/core/CMakeFiles/tableau_core.dir/dispatcher.cc.o.d"
  "/root/repo/src/core/peephole.cc" "src/core/CMakeFiles/tableau_core.dir/peephole.cc.o" "gcc" "src/core/CMakeFiles/tableau_core.dir/peephole.cc.o.d"
  "/root/repo/src/core/plan_cache.cc" "src/core/CMakeFiles/tableau_core.dir/plan_cache.cc.o" "gcc" "src/core/CMakeFiles/tableau_core.dir/plan_cache.cc.o.d"
  "/root/repo/src/core/planner.cc" "src/core/CMakeFiles/tableau_core.dir/planner.cc.o" "gcc" "src/core/CMakeFiles/tableau_core.dir/planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/tableau_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/tableau_table.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tableau_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
