# Empty compiler generated dependencies file for tableau_core.
# This may be replaced when dependencies are built.
