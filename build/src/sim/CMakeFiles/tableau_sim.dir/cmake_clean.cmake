file(REMOVE_RECURSE
  "CMakeFiles/tableau_sim.dir/simulation.cc.o"
  "CMakeFiles/tableau_sim.dir/simulation.cc.o.d"
  "libtableau_sim.a"
  "libtableau_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableau_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
