# Empty compiler generated dependencies file for tableau_sim.
# This may be replaced when dependencies are built.
