file(REMOVE_RECURSE
  "libtableau_sim.a"
)
