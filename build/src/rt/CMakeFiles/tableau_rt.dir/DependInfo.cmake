
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/cd_split.cc" "src/rt/CMakeFiles/tableau_rt.dir/cd_split.cc.o" "gcc" "src/rt/CMakeFiles/tableau_rt.dir/cd_split.cc.o.d"
  "/root/repo/src/rt/dpfair.cc" "src/rt/CMakeFiles/tableau_rt.dir/dpfair.cc.o" "gcc" "src/rt/CMakeFiles/tableau_rt.dir/dpfair.cc.o.d"
  "/root/repo/src/rt/edf_sim.cc" "src/rt/CMakeFiles/tableau_rt.dir/edf_sim.cc.o" "gcc" "src/rt/CMakeFiles/tableau_rt.dir/edf_sim.cc.o.d"
  "/root/repo/src/rt/hyperperiod.cc" "src/rt/CMakeFiles/tableau_rt.dir/hyperperiod.cc.o" "gcc" "src/rt/CMakeFiles/tableau_rt.dir/hyperperiod.cc.o.d"
  "/root/repo/src/rt/partition.cc" "src/rt/CMakeFiles/tableau_rt.dir/partition.cc.o" "gcc" "src/rt/CMakeFiles/tableau_rt.dir/partition.cc.o.d"
  "/root/repo/src/rt/schedulability.cc" "src/rt/CMakeFiles/tableau_rt.dir/schedulability.cc.o" "gcc" "src/rt/CMakeFiles/tableau_rt.dir/schedulability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tableau_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
