file(REMOVE_RECURSE
  "libtableau_rt.a"
)
