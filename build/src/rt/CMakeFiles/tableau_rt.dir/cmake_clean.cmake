file(REMOVE_RECURSE
  "CMakeFiles/tableau_rt.dir/cd_split.cc.o"
  "CMakeFiles/tableau_rt.dir/cd_split.cc.o.d"
  "CMakeFiles/tableau_rt.dir/dpfair.cc.o"
  "CMakeFiles/tableau_rt.dir/dpfair.cc.o.d"
  "CMakeFiles/tableau_rt.dir/edf_sim.cc.o"
  "CMakeFiles/tableau_rt.dir/edf_sim.cc.o.d"
  "CMakeFiles/tableau_rt.dir/hyperperiod.cc.o"
  "CMakeFiles/tableau_rt.dir/hyperperiod.cc.o.d"
  "CMakeFiles/tableau_rt.dir/partition.cc.o"
  "CMakeFiles/tableau_rt.dir/partition.cc.o.d"
  "CMakeFiles/tableau_rt.dir/schedulability.cc.o"
  "CMakeFiles/tableau_rt.dir/schedulability.cc.o.d"
  "libtableau_rt.a"
  "libtableau_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableau_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
