# Empty compiler generated dependencies file for tableau_rt.
# This may be replaced when dependencies are built.
