file(REMOVE_RECURSE
  "CMakeFiles/tableau_table.dir/scheduling_table.cc.o"
  "CMakeFiles/tableau_table.dir/scheduling_table.cc.o.d"
  "CMakeFiles/tableau_table.dir/table_delta.cc.o"
  "CMakeFiles/tableau_table.dir/table_delta.cc.o.d"
  "libtableau_table.a"
  "libtableau_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableau_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
