file(REMOVE_RECURSE
  "libtableau_table.a"
)
