# Empty dependencies file for tableau_table.
# This may be replaced when dependencies are built.
