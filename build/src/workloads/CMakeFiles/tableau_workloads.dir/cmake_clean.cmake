file(REMOVE_RECURSE
  "CMakeFiles/tableau_workloads.dir/gang.cc.o"
  "CMakeFiles/tableau_workloads.dir/gang.cc.o.d"
  "CMakeFiles/tableau_workloads.dir/guest.cc.o"
  "CMakeFiles/tableau_workloads.dir/guest.cc.o.d"
  "CMakeFiles/tableau_workloads.dir/ping.cc.o"
  "CMakeFiles/tableau_workloads.dir/ping.cc.o.d"
  "CMakeFiles/tableau_workloads.dir/stress.cc.o"
  "CMakeFiles/tableau_workloads.dir/stress.cc.o.d"
  "CMakeFiles/tableau_workloads.dir/web.cc.o"
  "CMakeFiles/tableau_workloads.dir/web.cc.o.d"
  "libtableau_workloads.a"
  "libtableau_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableau_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
