# Empty dependencies file for tableau_workloads.
# This may be replaced when dependencies are built.
