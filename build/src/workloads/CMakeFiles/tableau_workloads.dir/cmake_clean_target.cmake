file(REMOVE_RECURSE
  "libtableau_workloads.a"
)
