# Empty compiler generated dependencies file for tableau_stats.
# This may be replaced when dependencies are built.
