file(REMOVE_RECURSE
  "CMakeFiles/tableau_stats.dir/histogram.cc.o"
  "CMakeFiles/tableau_stats.dir/histogram.cc.o.d"
  "libtableau_stats.a"
  "libtableau_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableau_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
