file(REMOVE_RECURSE
  "libtableau_stats.a"
)
