file(REMOVE_RECURSE
  "CMakeFiles/tableau_hypervisor.dir/machine.cc.o"
  "CMakeFiles/tableau_hypervisor.dir/machine.cc.o.d"
  "CMakeFiles/tableau_hypervisor.dir/trace.cc.o"
  "CMakeFiles/tableau_hypervisor.dir/trace.cc.o.d"
  "libtableau_hypervisor.a"
  "libtableau_hypervisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableau_hypervisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
