# Empty compiler generated dependencies file for tableau_hypervisor.
# This may be replaced when dependencies are built.
