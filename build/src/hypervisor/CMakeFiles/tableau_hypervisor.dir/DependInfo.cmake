
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hypervisor/machine.cc" "src/hypervisor/CMakeFiles/tableau_hypervisor.dir/machine.cc.o" "gcc" "src/hypervisor/CMakeFiles/tableau_hypervisor.dir/machine.cc.o.d"
  "/root/repo/src/hypervisor/trace.cc" "src/hypervisor/CMakeFiles/tableau_hypervisor.dir/trace.cc.o" "gcc" "src/hypervisor/CMakeFiles/tableau_hypervisor.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tableau_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tableau_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tableau_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/tableau_rt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
