file(REMOVE_RECURSE
  "libtableau_hypervisor.a"
)
