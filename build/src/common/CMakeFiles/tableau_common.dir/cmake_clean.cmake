file(REMOVE_RECURSE
  "CMakeFiles/tableau_common.dir/math_util.cc.o"
  "CMakeFiles/tableau_common.dir/math_util.cc.o.d"
  "CMakeFiles/tableau_common.dir/rng.cc.o"
  "CMakeFiles/tableau_common.dir/rng.cc.o.d"
  "CMakeFiles/tableau_common.dir/time.cc.o"
  "CMakeFiles/tableau_common.dir/time.cc.o.d"
  "libtableau_common.a"
  "libtableau_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableau_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
