# Empty compiler generated dependencies file for tableau_common.
# This may be replaced when dependencies are built.
