file(REMOVE_RECURSE
  "libtableau_common.a"
)
