# Empty dependencies file for tableau_schedulers.
# This may be replaced when dependencies are built.
