file(REMOVE_RECURSE
  "CMakeFiles/tableau_schedulers.dir/cfs.cc.o"
  "CMakeFiles/tableau_schedulers.dir/cfs.cc.o.d"
  "CMakeFiles/tableau_schedulers.dir/credit.cc.o"
  "CMakeFiles/tableau_schedulers.dir/credit.cc.o.d"
  "CMakeFiles/tableau_schedulers.dir/credit2.cc.o"
  "CMakeFiles/tableau_schedulers.dir/credit2.cc.o.d"
  "CMakeFiles/tableau_schedulers.dir/rtds.cc.o"
  "CMakeFiles/tableau_schedulers.dir/rtds.cc.o.d"
  "CMakeFiles/tableau_schedulers.dir/tableau_scheduler.cc.o"
  "CMakeFiles/tableau_schedulers.dir/tableau_scheduler.cc.o.d"
  "libtableau_schedulers.a"
  "libtableau_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableau_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
