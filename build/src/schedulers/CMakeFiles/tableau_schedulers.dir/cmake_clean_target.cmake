file(REMOVE_RECURSE
  "libtableau_schedulers.a"
)
