# Empty dependencies file for tableau_harness.
# This may be replaced when dependencies are built.
