file(REMOVE_RECURSE
  "CMakeFiles/tableau_harness.dir/scenario.cc.o"
  "CMakeFiles/tableau_harness.dir/scenario.cc.o.d"
  "libtableau_harness.a"
  "libtableau_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableau_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
