file(REMOVE_RECURSE
  "libtableau_harness.a"
)
