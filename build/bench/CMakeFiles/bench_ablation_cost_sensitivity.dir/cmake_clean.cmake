file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cost_sensitivity.dir/bench_ablation_cost_sensitivity.cc.o"
  "CMakeFiles/bench_ablation_cost_sensitivity.dir/bench_ablation_cost_sensitivity.cc.o.d"
  "bench_ablation_cost_sensitivity"
  "bench_ablation_cost_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cost_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
