file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_reconfiguration.dir/bench_ext_reconfiguration.cc.o"
  "CMakeFiles/bench_ext_reconfiguration.dir/bench_ext_reconfiguration.cc.o.d"
  "bench_ext_reconfiguration"
  "bench_ext_reconfiguration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_reconfiguration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
