# Empty dependencies file for bench_ext_reconfiguration.
# This may be replaced when dependencies are built.
