file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_web_cpu_background.dir/bench_fig8_web_cpu_background.cc.o"
  "CMakeFiles/bench_fig8_web_cpu_background.dir/bench_fig8_web_cpu_background.cc.o.d"
  "bench_fig8_web_cpu_background"
  "bench_fig8_web_cpu_background.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_web_cpu_background.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
