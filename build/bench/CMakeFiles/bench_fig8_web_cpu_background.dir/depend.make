# Empty dependencies file for bench_fig8_web_cpu_background.
# This may be replaced when dependencies are built.
