
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_dispatch_lookup.cc" "bench/CMakeFiles/bench_ablation_dispatch_lookup.dir/bench_ablation_dispatch_lookup.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_dispatch_lookup.dir/bench_ablation_dispatch_lookup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tableau_core.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/tableau_table.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/tableau_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tableau_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
