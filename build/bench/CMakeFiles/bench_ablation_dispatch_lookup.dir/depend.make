# Empty dependencies file for bench_ablation_dispatch_lookup.
# This may be replaced when dependencies are built.
