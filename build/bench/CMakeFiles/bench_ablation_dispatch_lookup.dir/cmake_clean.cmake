file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dispatch_lookup.dir/bench_ablation_dispatch_lookup.cc.o"
  "CMakeFiles/bench_ablation_dispatch_lookup.dir/bench_ablation_dispatch_lookup.cc.o.d"
  "bench_ablation_dispatch_lookup"
  "bench_ablation_dispatch_lookup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dispatch_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
