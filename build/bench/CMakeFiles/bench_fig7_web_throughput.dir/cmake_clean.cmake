file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_web_throughput.dir/bench_fig7_web_throughput.cc.o"
  "CMakeFiles/bench_fig7_web_throughput.dir/bench_fig7_web_throughput.cc.o.d"
  "bench_fig7_web_throughput"
  "bench_fig7_web_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_web_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
