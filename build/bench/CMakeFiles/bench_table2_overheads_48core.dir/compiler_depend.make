# Empty compiler generated dependencies file for bench_table2_overheads_48core.
# This may be replaced when dependencies are built.
