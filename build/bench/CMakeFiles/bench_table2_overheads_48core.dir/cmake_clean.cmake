file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_overheads_48core.dir/bench_table2_overheads_48core.cc.o"
  "CMakeFiles/bench_table2_overheads_48core.dir/bench_table2_overheads_48core.cc.o.d"
  "bench_table2_overheads_48core"
  "bench_table2_overheads_48core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_overheads_48core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
