# Empty compiler generated dependencies file for bench_ablation_incremental_plan.
# This may be replaced when dependencies are built.
