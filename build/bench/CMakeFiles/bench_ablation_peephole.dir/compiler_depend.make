# Empty compiler generated dependencies file for bench_ablation_peephole.
# This may be replaced when dependencies are built.
