file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_peephole.dir/bench_ablation_peephole.cc.o"
  "CMakeFiles/bench_ablation_peephole.dir/bench_ablation_peephole.cc.o.d"
  "bench_ablation_peephole"
  "bench_ablation_peephole.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_peephole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
