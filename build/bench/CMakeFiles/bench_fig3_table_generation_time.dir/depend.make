# Empty dependencies file for bench_fig3_table_generation_time.
# This may be replaced when dependencies are built.
