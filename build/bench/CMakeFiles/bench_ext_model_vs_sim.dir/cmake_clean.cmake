file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_model_vs_sim.dir/bench_ext_model_vs_sim.cc.o"
  "CMakeFiles/bench_ext_model_vs_sim.dir/bench_ext_model_vs_sim.cc.o.d"
  "bench_ext_model_vs_sim"
  "bench_ext_model_vs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_model_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
