# Empty dependencies file for bench_table1_overheads_16core.
# This may be replaced when dependencies are built.
