file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_overheads_16core.dir/bench_table1_overheads_16core.cc.o"
  "CMakeFiles/bench_table1_overheads_16core.dir/bench_table1_overheads_16core.cc.o.d"
  "bench_table1_overheads_16core"
  "bench_table1_overheads_16core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_overheads_16core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
