# Empty compiler generated dependencies file for bench_ext_cfs_comparison.
# This may be replaced when dependencies are built.
