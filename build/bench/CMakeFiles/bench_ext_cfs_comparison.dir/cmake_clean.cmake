file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cfs_comparison.dir/bench_ext_cfs_comparison.cc.o"
  "CMakeFiles/bench_ext_cfs_comparison.dir/bench_ext_cfs_comparison.cc.o.d"
  "bench_ext_cfs_comparison"
  "bench_ext_cfs_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cfs_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
