file(REMOVE_RECURSE
  "CMakeFiles/tableau_planctl.dir/tableau_planctl.cpp.o"
  "CMakeFiles/tableau_planctl.dir/tableau_planctl.cpp.o.d"
  "tableau_planctl"
  "tableau_planctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableau_planctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
