# Empty compiler generated dependencies file for tableau_planctl.
# This may be replaced when dependencies are built.
